"""Model entities: the things an LPC analysis is *about*.

The paper's Smart Projector walkthrough names "four major physical and
logical entities" and analyses each at every applicable layer.  A
:class:`ModelEntity` therefore carries *facets*: per-layer, per-column
views onto concrete library objects (a ``FormFactor`` at the physical
layer, a ``PlatformProfile`` at the resource layer, a ``SessionManager``
at the abstract layer...), so the conceptual model stays attached to the
running system it describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from ..kernel.errors import ModelError
from .layers import Column, Layer

#: Entity kinds used by reports.
KINDS = ("device", "user", "service", "infrastructure")


@dataclass
class Facet:
    """One entity's presence at one layer."""

    layer: Layer
    column: Column
    description: str
    #: the concrete library object backing this facet, if any.
    subject: Any = None


class ModelEntity:
    """A named participant in a pervasive computing system."""

    def __init__(self, name: str, kind: str) -> None:
        if kind not in KINDS:
            raise ModelError(f"unknown entity kind {kind!r}; use one of {KINDS}")
        self.name = name
        self.kind = kind
        self._facets: List[Facet] = []

    @property
    def default_column(self) -> Column:
        return Column.USER if self.kind == "user" else Column.DEVICE

    def add_facet(self, layer: Layer, description: str, subject: Any = None,
                  column: Optional[Column] = None) -> Facet:
        facet = Facet(layer, column or self.default_column, description, subject)
        self._facets.append(facet)
        return facet

    def facets(self, layer: Optional[Layer] = None) -> List[Facet]:
        if layer is None:
            return list(self._facets)
        return [f for f in self._facets if f.layer == layer]

    def layers(self) -> Tuple[Layer, ...]:
        return tuple(sorted({f.layer for f in self._facets}))

    def facet_at(self, layer: Layer) -> Optional[Facet]:
        for facet in self._facets:
            if facet.layer == layer:
                return facet
        return None

    def __repr__(self) -> str:  # pragma: no cover
        return f"<ModelEntity {self.name} ({self.kind}) layers={[l.name for l in self.layers()]}>"


def smart_projector_entities() -> List[ModelEntity]:
    """The paper's four major entities, with the facets its analysis
    mentions — used as the default population of an LPC model and by the
    figure/report tests."""
    presenter = ModelEntity("presenter", "user")
    presenter.add_facet(Layer.PHYSICAL, "the presenter's body; proximity to the laptop")
    presenter.add_facet(Layer.RESOURCE, "GUI literacy, English, projector know-how")
    presenter.add_facet(Layer.ABSTRACT, "mental model of two services and sessions")
    presenter.add_facet(Layer.INTENTIONAL, "wants to make a presentation without ceremony")

    laptop = ModelEntity("laptop", "device")
    laptop.add_facet(Layer.PHYSICAL, "presentation laptop with 2.4 GHz WLAN card")
    laptop.add_facet(Layer.RESOURCE, "Java, VNC server, window system, WLAN stack")
    laptop.add_facet(Layer.ABSTRACT, "projection + control clients, VNC server process")

    projector = ModelEntity("smart-projector", "device")
    projector.add_facet(Layer.PHYSICAL, "digital projector + Aroma Adapter hardware")
    projector.add_facet(Layer.RESOURCE, "Linux/JVM runtime on the adapter, WLAN")
    projector.add_facet(Layer.ABSTRACT, "projection & control services, session objects")
    projector.add_facet(Layer.INTENTIONAL, "built to research service discovery")

    lookup = ModelEntity("jini-lookup", "infrastructure")
    lookup.add_facet(Layer.RESOURCE, "lookup service assumed present on the network")
    lookup.add_facet(Layer.ABSTRACT, "registration, lookup, leases, remote events")

    return [presenter, laptop, projector, lookup]
