"""The Layered Pervasive Computing (LPC) model's structural vocabulary.

Five layers, two columns, and one defining cross-column relation per
layer — Figure 1 of the paper as data.  Everything else in
:mod:`repro.core` (entities, constraints, classification, figures) is
built from these definitions, so the rendered figures and the analysis
reports always agree with the model itself.
"""

from __future__ import annotations

import enum
from typing import Dict, Tuple

from ..kernel.errors import ModelError


class Layer(enum.IntEnum):
    """The five LPC layers, bottom-up."""

    ENVIRONMENT = 0
    PHYSICAL = 1
    RESOURCE = 2
    ABSTRACT = 3
    INTENTIONAL = 4

    @property
    def title(self) -> str:
        return self.name.capitalize()


class Column(enum.Enum):
    """Which side of the model an artifact belongs to.

    The environment layer is shared: it sits beneath both columns.
    """

    DEVICE = "device"
    USER = "user"
    SHARED = "shared"


#: The device-side artifact each layer holds (Figure 1, left column).
DEVICE_SIDE: Dict[Layer, str] = {
    Layer.ENVIRONMENT: "Environment",
    Layer.PHYSICAL: "Physical Devices",
    Layer.RESOURCE: "Mem | Sto | Exe | UI | Net",
    Layer.ABSTRACT: "Application",
    Layer.INTENTIONAL: "Design Purpose",
}

#: The user-side artifact each layer holds (Figure 1, right column).
USER_SIDE: Dict[Layer, str] = {
    Layer.ENVIRONMENT: "Environment",
    Layer.PHYSICAL: "Physical User",
    Layer.RESOURCE: "User Faculties",
    Layer.ABSTRACT: "Mental Models",
    Layer.INTENTIONAL: "User Goals",
}

#: The defining cross-column relation of each layer (Figures 2-5).
RELATIONS: Dict[Layer, str] = {
    Layer.ENVIRONMENT: "communicates with / must cope with",
    Layer.PHYSICAL: "must be compatible with",
    Layer.RESOURCE: "must not be frustrated by",
    Layer.ABSTRACT: "must be consistent with",
    Layer.INTENTIONAL: "must be in harmony with",
}

#: The five resource boxes of Figure 3 with their expansions.
RESOURCE_BOXES: Tuple[Tuple[str, str], ...] = (
    ("Mem", "Memory"),
    ("Sto", "Non-volatile Storage"),
    ("Exe", "Execution Engine"),
    ("UI", "User Interface"),
    ("Net", "Networking"),
)

#: Sub-structure of the abstract layer (Figure 4).
ABSTRACT_USER_PARTS: Tuple[str, ...] = ("User Reasoning", "User Expectations")
ABSTRACT_DEVICE_PARTS: Tuple[str, ...] = ("Software Logic", "Software State")


def device_abstraction_rank(layer: Layer) -> int:
    """Device column: higher layers are *more abstract* (OSI-style)."""
    return int(layer)


def user_temporal_rank(layer: Layer) -> int:
    """User column: higher layers are *more temporally specific* — they
    change faster.  "A user's goals ... may change by the minute, but his
    physical characteristics take much longer to change."

    Returns a rank where 0 changes slowest.  The environment is excluded
    (it is not a user stratum).
    """
    if layer == Layer.ENVIRONMENT:
        raise ModelError("the environment is not a user stratum")
    return int(layer) - 1


#: Indicative timescale on which each user stratum changes.
USER_TIMESCALES: Dict[Layer, str] = {
    Layer.PHYSICAL: "years (physiology)",
    Layer.RESOURCE: "weeks-months (faculties, trainable)",
    Layer.ABSTRACT: "minutes-hours (mental models)",
    Layer.INTENTIONAL: "minutes (goals)",
}


def layers_bottom_up() -> Tuple[Layer, ...]:
    return tuple(sorted(Layer))


def layers_top_down() -> Tuple[Layer, ...]:
    return tuple(sorted(Layer, reverse=True))
