"""Post-run analysis: compare an observed issue inventory with the
paper's own Smart Projector walkthrough.

Experiment E9's engine.  Matching between an observed concern and a
stated paper item is *semantic-lite*: same layer plus keyword overlap —
good enough to score coverage without a language model, and fully
transparent in the report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from .concerns import Concern
from .layers import Layer
from .model import LPCModel
from .paper import paper_inventory, user_column_items

#: Hand-curated signature keywords for each paper item family; an observed
#: concern covers a paper item when they share a layer and a signature hits
#: both texts.
_SIGNATURES: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("session", ("session", "hijack", "in use", "holds", "denied",
                 "one person", "at a time", "multiple users")),
    ("relinquish", ("relinquish", "stale", "expire", "force-released",
                    "reclaimed")),
    ("vnc-server", ("vnc", "server down", "no update")),
    ("two-clients", ("both clients", "skipped step", "incomplete mental")),
    ("language", ("english", "language", "speaks")),
    ("gui", ("graphical", "gui", "literacy")),
    ("admin", ("administrat", "fix", "repair", "skill", "wedged", "jammed",
               "lookup service down")),
    ("lookup", ("lookup", "registry", "registration", "re-register")),
    ("bandwidth", ("bandwidth", "animation", "too slow", "rate", "stall")),
    ("proximity", ("proximity", "reach", "tether", "constrain")),
    ("interference", ("interferen", "2.4", "concentration", "density",
                      "decode failure", "collision")),
    ("noise", ("noise", "voice", "recognition", "socially")),
    ("harmony", ("harmony", "abandon", "casual", "research", "goal",
                 "commercial")),
    ("power", ("battery", "drained", "power")),
    ("storage", ("storage", "organise", "organize", "flat store")),
    ("abort", ("abort", "single-threaded", "waited", "interactive")),
    ("diagnostics", ("diagnostic", "fault tolerance", "recovery",
                     "lacks the skill")),
    ("voice-physical", ("voice control", "speech level", "clarity")),
    ("runtime", ("java", "vnc runtime", "runtime is present",
                 "expected present")),
    ("icons", ("icon", "availability", "no longer available")),
)


def _signatures_in(text: str) -> Set[str]:
    lowered = text.lower()
    return {name for name, keywords in _SIGNATURES
            if any(k in lowered for k in keywords)}


@dataclass
class CoverageItem:
    """One paper item and the observed concerns that cover it."""

    stated: Concern
    matched_by: List[Concern] = field(default_factory=list)

    @property
    def covered(self) -> bool:
        return bool(self.matched_by)


@dataclass
class CoverageReport:
    """How much of the paper's inventory a run re-discovered."""

    items: List[CoverageItem]
    extras: List[Concern]    #: observed concerns matching no paper item

    @property
    def coverage(self) -> float:
        if not self.items:
            return 0.0
        return sum(i.covered for i in self.items) / len(self.items)

    def coverage_by_layer(self) -> Dict[Layer, Tuple[int, int]]:
        """layer -> (covered, total) of paper items."""
        out: Dict[Layer, Tuple[int, int]] = {}
        for layer in Layer:
            layer_items = [i for i in self.items if i.stated.layer == layer]
            covered = sum(i.covered for i in layer_items)
            out[layer] = (covered, len(layer_items))
        return out

    def summary(self) -> str:
        lines = [f"paper-issue coverage: {self.coverage:.0%} "
                 f"({sum(i.covered for i in self.items)}/{len(self.items)})"]
        for layer, (covered, total) in self.coverage_by_layer().items():
            lines.append(f"  {layer.title:12s} {covered}/{total}")
        if self.extras:
            lines.append(f"  + {len(self.extras)} observed concerns beyond "
                         "the paper's list")
        return "\n".join(lines)


def compare_with_paper(observed: List[Concern],
                       include_user_column: bool = True) -> CoverageReport:
    """Match observed concerns against the paper's inventory.

    Args:
        observed: concerns from a run (e.g. ``model.concerns()``).
        include_user_column: when False, user-column paper items are kept
            in the total but cannot be matched — quantifying what a
            device-only model loses (the E9 ablation).
    """
    user_texts = {c.description for c in user_column_items()}
    items = [CoverageItem(stated) for stated in paper_inventory()]
    matched_observed: Set[int] = set()
    for item in items:
        if not include_user_column and item.stated.description in user_texts:
            continue
        stated_sigs = _signatures_in(item.stated.description)
        for idx, concern in enumerate(observed):
            if concern.layer != item.stated.layer:
                continue
            if stated_sigs & _signatures_in(concern.description):
                item.matched_by.append(concern)
                matched_observed.add(idx)
    extras = [c for i, c in enumerate(observed) if i not in matched_observed]
    return CoverageReport(items, extras)


def analyze_model(model: LPCModel,
                  include_user_column: bool = True) -> CoverageReport:
    """Convenience: coverage report straight from a populated model."""
    return compare_with_paper(model.concerns(), include_user_column)
