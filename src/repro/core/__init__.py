"""The paper's primary contribution: the executable LPC conceptual model.

Layers and columns (:mod:`.layers`), entities with per-layer facets
(:mod:`.entities`), concern classification (:mod:`.concerns`), the four
cross-column constraint relations (:mod:`.constraints`), the model object
(:mod:`.model`), live instrumentation of simulations (:mod:`.instrument`),
coverage analysis against the paper's own inventory (:mod:`.analysis`,
:mod:`.paper`), and figure regeneration (:mod:`.figures`).
"""

from .analysis import (
    CoverageItem,
    CoverageReport,
    analyze_model,
    compare_with_paper,
)
from .checklist import (
    Checklist,
    ChecklistItem,
    GENERIC_QUESTIONS,
    build_checklist,
)
from .concerns import KEYWORD_LAYERS, TOPIC_LAYERS, Concern, ConcernClassifier
from .constraints import (
    ConstraintResult,
    check_abstract_consistency,
    check_acoustic_environment,
    check_intentional_harmony,
    check_physical_compatibility,
    check_radio_environment,
    check_resource_match,
)
from .entities import Facet, ModelEntity, smart_projector_entities
from .figures import (
    ALL_FIGURES,
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    render_all,
)
from .instrument import LPCInstrument
from .live import model_from_room
from .layers import (
    Column,
    DEVICE_SIDE,
    Layer,
    RELATIONS,
    RESOURCE_BOXES,
    USER_SIDE,
    USER_TIMESCALES,
    device_abstraction_rank,
    layers_bottom_up,
    layers_top_down,
    user_temporal_rank,
)
from .model import LPCModel, smart_projector_model
from .paper import (
    layer_counts,
    paper_inventory,
    paper_inventory_by_layer,
    user_column_items,
)

__all__ = [
    "ALL_FIGURES",
    "Checklist",
    "ChecklistItem",
    "Column",
    "Concern",
    "ConcernClassifier",
    "ConstraintResult",
    "CoverageItem",
    "CoverageReport",
    "DEVICE_SIDE",
    "Facet",
    "KEYWORD_LAYERS",
    "LPCInstrument",
    "LPCModel",
    "Layer",
    "ModelEntity",
    "RELATIONS",
    "RESOURCE_BOXES",
    "TOPIC_LAYERS",
    "USER_SIDE",
    "USER_TIMESCALES",
    "GENERIC_QUESTIONS",
    "analyze_model",
    "build_checklist",
    "check_abstract_consistency",
    "check_acoustic_environment",
    "check_intentional_harmony",
    "check_physical_compatibility",
    "check_radio_environment",
    "check_resource_match",
    "compare_with_paper",
    "device_abstraction_rank",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "layer_counts",
    "layers_bottom_up",
    "layers_top_down",
    "model_from_room",
    "paper_inventory",
    "paper_inventory_by_layer",
    "render_all",
    "smart_projector_entities",
    "smart_projector_model",
    "user_column_items",
    "user_temporal_rank",
]
