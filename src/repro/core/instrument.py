"""Live instrumentation: attach the conceptual model to a running
simulation.

Every substrate package emits ``issue.*`` trace records when it hits the
failure modes the paper describes (queue collapse, lease expiry, skipped
steps, drained batteries...).  :class:`LPCInstrument` subscribes to that
stream, classifies each issue into a layer, deduplicates repeats, and
feeds an :class:`~repro.core.model.LPCModel` — so after a run, the model's
report *is* the paper's analysis section, regenerated from observation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..kernel.scheduler import Simulator
from ..kernel.trace import TraceRecord
from .concerns import Concern
from .layers import Layer
from .model import LPCModel


class LPCInstrument:
    """Subscribes to a simulator's issue stream and populates a model.

    Args:
        sim: the simulator to observe.
        model: the model to populate.
        user_sources: trace sources that belong to the user column
            (defaults to the model's user entities).
        dedup: fold repeated identical issues into one concern with a
            count, keeping reports readable on long runs.
    """

    def __init__(self, sim: Simulator, model: LPCModel,
                 user_sources: Optional[Iterable[str]] = None,
                 dedup: bool = True) -> None:
        self.sim = sim
        self.model = model
        self.dedup = dedup
        self.user_sources = set(user_sources if user_sources is not None
                                else model.user_entities())
        self.classifier = model.classifier
        self._seen: Dict[Tuple[str, str, str], Concern] = {}
        self.observed = 0
        # Catch up on anything already in the trace, then follow live.
        for record in sim.tracer.issues():
            self._ingest(record)
        self._unsubscribe = sim.tracer.subscribe("issue", self._ingest)

    # ------------------------------------------------------------------
    def _ingest(self, record: TraceRecord) -> None:
        self.observed += 1
        topic = record.category.split(".", 1)[1] if "." in record.category else ""
        key = (topic, record.source, record.message)
        if self.dedup and key in self._seen:
            self._seen[key].count += 1
            return
        concern = self.classifier.from_trace(record, self.user_sources)
        if self.dedup:
            self._seen[key] = concern
        self.model.extend_concerns([concern])

    def detach(self) -> None:
        self._unsubscribe()

    # ------------------------------------------------------------------
    def layer_counts(self) -> Dict[Layer, int]:
        return self.model.concern_counts()

    def distinct_concerns(self) -> List[Concern]:
        return self.model.concerns()
