"""The LPC model object: entities, concerns and constraint results in one
place.

An :class:`LPCModel` is what the paper wished it had during the adapter
and projector work: a structure that holds every entity of a system with
its per-layer facets, accepts concerns from design discussion or live
simulation, classifies them, runs the cross-column constraint checks, and
renders the whole thing as a layered report.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..kernel.errors import ModelError
from .concerns import Concern, ConcernClassifier
from .constraints import ConstraintResult
from .entities import ModelEntity, smart_projector_entities
from .layers import (
    Column,
    DEVICE_SIDE,
    Layer,
    RELATIONS,
    USER_SIDE,
    layers_top_down,
)


class LPCModel:
    """One system described in Layered-Pervasive-Computing terms."""

    def __init__(self, name: str,
                 classifier: Optional[ConcernClassifier] = None) -> None:
        self.name = name
        self.classifier = classifier or ConcernClassifier(default=Layer.ABSTRACT)
        self._entities: Dict[str, ModelEntity] = {}
        self._concerns: List[Concern] = []
        self._checks: List[ConstraintResult] = []

    # ------------------------------------------------------------------
    # Entities
    # ------------------------------------------------------------------
    def add_entity(self, entity: ModelEntity) -> ModelEntity:
        if entity.name in self._entities:
            raise ModelError(f"entity {entity.name!r} already in model")
        self._entities[entity.name] = entity
        return entity

    def entity(self, name: str) -> ModelEntity:
        try:
            return self._entities[name]
        except KeyError:
            raise ModelError(f"no entity {name!r} in model") from None

    def entities(self, layer: Optional[Layer] = None) -> List[ModelEntity]:
        if layer is None:
            return list(self._entities.values())
        return [e for e in self._entities.values() if e.facet_at(layer)]

    def user_entities(self) -> List[str]:
        return [e.name for e in self._entities.values() if e.kind == "user"]

    # ------------------------------------------------------------------
    # Concerns
    # ------------------------------------------------------------------
    def add_concern(self, description: str, topic: str = "",
                    entity: str = "", column: Optional[Column] = None,
                    layer: Optional[Layer] = None,
                    source: str = "stated") -> Concern:
        """Record a concern; classified automatically unless ``layer`` given."""
        if layer is None:
            layer = self.classifier.classify(topic, description)
        if column is None:
            ent = self._entities.get(entity)
            column = ent.default_column if ent else Column.DEVICE
        concern = Concern(description, layer, column, source, topic, entity)
        self._concerns.append(concern)
        return concern

    def extend_concerns(self, concerns: Iterable[Concern]) -> None:
        self._concerns.extend(concerns)

    def concerns(self, layer: Optional[Layer] = None,
                 column: Optional[Column] = None) -> List[Concern]:
        out = self._concerns
        if layer is not None:
            out = [c for c in out if c.layer == layer]
        if column is not None:
            out = [c for c in out if c.column == column]
        return list(out)

    def concern_counts(self) -> Dict[Layer, int]:
        counts = {layer: 0 for layer in Layer}
        for concern in self._concerns:
            counts[concern.layer] += 1
        return counts

    # ------------------------------------------------------------------
    # Constraint results
    # ------------------------------------------------------------------
    def record_check(self, result: ConstraintResult) -> ConstraintResult:
        self._checks.append(result)
        return result

    def checks(self, layer: Optional[Layer] = None,
               satisfied: Optional[bool] = None) -> List[ConstraintResult]:
        out = self._checks
        if layer is not None:
            out = [c for c in out if c.layer == layer]
        if satisfied is not None:
            out = [c for c in out if c.satisfied == satisfied]
        return list(out)

    def violations(self) -> List[ConstraintResult]:
        return self.checks(satisfied=False)

    def layer_health(self) -> Dict[Layer, float]:
        """Mean constraint score per layer (1.0 where nothing was checked)."""
        health: Dict[Layer, float] = {}
        for layer in Layer:
            scores = [c.score for c in self._checks if c.layer == layer]
            health[layer] = sum(scores) / len(scores) if scores else 1.0
        return health

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(self) -> str:
        """A layered textual report: the model applied to this system."""
        lines = [f"LPC analysis of {self.name!r}", "=" * (17 + len(self.name))]
        health = self.layer_health()
        for layer in layers_top_down():
            concerns = self.concerns(layer)
            checks = self.checks(layer)
            lines.append("")
            lines.append(f"[{layer.title}]  device: {DEVICE_SIDE[layer]} | "
                         f"user: {USER_SIDE[layer]}")
            lines.append(f"  relation: {RELATIONS[layer]}  "
                         f"(health {health[layer]:.2f})")
            for check in checks:
                mark = "ok " if check.satisfied else "VIOLATION"
                lines.append(f"  - [{mark}] {check.subject}: "
                             f"{'; '.join(check.details)}")
            for concern in concerns:
                lines.append(f"  * ({concern.source}) {concern.description}")
            if not checks and not concerns:
                lines.append("  (no findings)")
        return "\n".join(lines)


def smart_projector_model() -> LPCModel:
    """The paper's worked example, pre-populated with its four entities."""
    model = LPCModel("smart-projector")
    for entity in smart_projector_entities():
        model.add_entity(entity)
    return model
