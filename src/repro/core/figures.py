"""Regenerating the paper's five figures from the model definitions.

The figures are conceptual diagrams; we render them as ASCII generated
*from the data structures* in :mod:`repro.core.layers` — not stored
strings — so any drift between the model and its pictures is impossible.
The benchmark suite asserts structural properties of each rendering
(layer order, relation labels, resource boxes) as the F1–F5 reproductions.
"""

from __future__ import annotations

from typing import List

from .layers import (
    ABSTRACT_DEVICE_PARTS,
    ABSTRACT_USER_PARTS,
    DEVICE_SIDE,
    Layer,
    RELATIONS,
    RESOURCE_BOXES,
    USER_SIDE,
    USER_TIMESCALES,
    layers_top_down,
)

_WIDTH = 30


def _box(text: str, width: int = _WIDTH) -> List[str]:
    inner = width - 2
    return ["+" + "-" * inner + "+",
            "|" + text.center(inner) + "|",
            "+" + "-" * inner + "+"]


def _pair_row(left: str, right: str, relation: str) -> List[str]:
    left_box = _box(left)
    right_box = _box(right)
    arrow = f"<-- {relation} -->"
    mid = arrow.center(len(arrow) + 2)
    lines = []
    for i in range(3):
        connector = mid if i == 1 else " " * len(mid)
        lines.append(left_box[i] + connector + right_box[i])
    return lines


def figure1() -> str:
    """Figure 1: the full Aroma conceptual model — five layers, the user
    column beside the device column, environment beneath both."""
    lines = ["Figure 1: Aroma pervasive computing conceptual model", ""]
    header = ("DEVICE".center(_WIDTH) + " " * 10 + "USER".center(_WIDTH))
    lines.append(header)
    for layer in layers_top_down():
        if layer == Layer.ENVIRONMENT:
            total = 2 * _WIDTH + 10
            lines.append("+" + "-" * (total - 2) + "+")
            lines.append("|" + DEVICE_SIDE[layer].center(total - 2) + "|")
            lines.append("+" + "-" * (total - 2) + "+")
        else:
            left = _box(DEVICE_SIDE[layer])
            right = _box(USER_SIDE[layer])
            gap = layer.title.center(10)
            for i in range(3):
                middle = gap if i == 1 else " " * 10
                lines.append(left[i] + middle + right[i])
    lines.append("")
    lines.append("device column: increasing abstraction upward")
    lines.append("user column: increasing temporal specificity upward")
    for layer, timescale in USER_TIMESCALES.items():
        lines.append(f"  {USER_SIDE[layer]:15s} changes on {timescale}")
    return "\n".join(lines)


def figure2() -> str:
    """Figure 2: environment and physical layers.  Physical entities (user
    or device) must be compatible with each other and communicate through
    the environment."""
    lines = ["Figure 2: environment and physical layers", ""]
    lines += _pair_row("Physical Entity*", "Physical Device",
                       RELATIONS[Layer.PHYSICAL])
    total = 2 * _WIDTH + len(f"<-- {RELATIONS[Layer.PHYSICAL]} -->") + 2
    lines.append("|".rjust(_WIDTH // 2) + " " * (total - _WIDTH) )
    lines.append("+" + "-" * (total - 2) + "+")
    lines.append("|" + "Environment".center(total - 2) + "|")
    lines.append("+" + "-" * (total - 2) + "+")
    lines.append("")
    lines.append("* can be either a user or a device")
    lines.append(f"entities {RELATIONS[Layer.ENVIRONMENT]} the environment")
    return "\n".join(lines)


def figure3() -> str:
    """Figure 3: the resource layer — the five device boxes against the
    user's faculties."""
    lines = ["Figure 3: the resource layer", ""]
    cells = " | ".join(short for short, _ in RESOURCE_BOXES)
    lines += _pair_row("User Faculties*", cells, RELATIONS[Layer.RESOURCE])
    lines.append("")
    for short, long_name in RESOURCE_BOXES:
        lines.append(f"  {short:4s} = {long_name}")
    lines.append("* e.g. education/skills, language, temperament")
    return "\n".join(lines)


def figure4() -> str:
    """Figure 4: the abstract layer — mental models vs the application."""
    lines = ["Figure 4: the abstract layer", ""]
    lines += _pair_row("Mental Models", "Application",
                       RELATIONS[Layer.ABSTRACT])
    lines.append("")
    lines.append("  Mental Models = " + " + ".join(ABSTRACT_USER_PARTS))
    lines.append("  Application   = " + " + ".join(ABSTRACT_DEVICE_PARTS))
    return "\n".join(lines)


def figure5() -> str:
    """Figure 5: the intentional layer — user goals vs design purpose."""
    lines = ["Figure 5: the intentional layer", ""]
    lines += _pair_row("User Goals", "Design Purpose",
                       RELATIONS[Layer.INTENTIONAL])
    return "\n".join(lines)


ALL_FIGURES = {1: figure1, 2: figure2, 3: figure3, 4: figure4, 5: figure5}


def render_all() -> str:
    return "\n\n".join(ALL_FIGURES[i]() for i in sorted(ALL_FIGURES))
