"""The paper's own Smart Projector issue inventory, as data.

Section "Analysis of a Pervasive Computing System" walks the prototype
through all five layers and names concrete issues at each.  This module
transcribes that inventory so experiment E9 can measure how much of it
our *simulated* run re-discovers, and the ablation can show what is lost
when the user column is removed from the model.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .concerns import Concern
from .layers import Column, Layer

#: (layer, column, user_column_required, description)
#: ``user_column_required`` marks issues that only exist because the model
#: keeps the human in view — the paper's core argument.
_PAPER_ITEMS: Tuple[Tuple[Layer, Column, bool, str], ...] = (
    # Intentional
    (Layer.INTENTIONAL, Column.USER, True,
     "research-oriented design is not in harmony with casual users "
     "expecting a commercial-grade product"),
    (Layer.INTENTIONAL, Column.DEVICE, False,
     "design purpose: research, measure and demonstrate service discovery"),
    # Abstract
    (Layer.ABSTRACT, Column.USER, True,
     "user must understand both clients must be started to project and control"),
    (Layer.ABSTRACT, Column.USER, True,
     "user must stop both clients when finished"),
    (Layer.ABSTRACT, Column.USER, True,
     "user must realize the VNC server must be started on the laptop"),
    (Layer.ABSTRACT, Column.USER, True,
     "user must realize only one person can use either service at a time"),
    (Layer.ABSTRACT, Column.DEVICE, False,
     "session objects prevent another user hijacking use or control"),
    (Layer.ABSTRACT, Column.DEVICE, False,
     "desktop icons should reflect current service availability"),
    (Layer.ABSTRACT, Column.DEVICE, False,
     "gracefully resolve multiple users accessing services in different orders"),
    (Layer.ABSTRACT, Column.DEVICE, False,
     "deal with users who forget to relinquish control without an administrator"),
    # Resource
    (Layer.RESOURCE, Column.DEVICE, False,
     "Java technologies and VNC expected present on the user's laptop"),
    (Layer.RESOURCE, Column.DEVICE, False,
     "automatic discovery relies on a Jini lookup service being present"),
    (Layer.RESOURCE, Column.USER, True,
     "users assumed to understand graphical user interfaces"),
    (Layer.RESOURCE, Column.USER, True,
     "users assumed to speak English"),
    (Layer.RESOURCE, Column.USER, True,
     "users assumed able to fix wireless, Linux adapter and lookup problems"),
    (Layer.RESOURCE, Column.DEVICE, False,
     "needs deployment, automated diagnostics, fault tolerance and recovery, "
     "internationalization and accessibility work"),
    # Physical
    (Layer.PHYSICAL, Column.DEVICE, False,
     "low bandwidth of current wireless adapters prevents rapid animation"),
    (Layer.PHYSICAL, Column.USER, True,
     "controlling via the laptop constrains the presenter to its proximity"),
    (Layer.PHYSICAL, Column.USER, True,
     "voice control would make human physical characteristics matter more"),
    # Environment
    (Layer.ENVIRONMENT, Column.SHARED, False,
     "2.4 GHz band: ranging, radio interference and scaling constraints"),
    (Layer.ENVIRONMENT, Column.SHARED, False,
     "effect of a high concentration of 2.4 GHz devices needs study"),
    (Layer.ENVIRONMENT, Column.SHARED, True,
     "background noise becomes objectionable if voice recognition is used"),
    (Layer.ENVIRONMENT, Column.SHARED, True,
     "voice-based devices may be socially inappropriate in cramped offices"),
)


def paper_inventory() -> List[Concern]:
    """The paper's issues as :class:`Concern` objects (source='stated')."""
    return [Concern(text, layer, column, source="stated")
            for layer, column, _user, text in _PAPER_ITEMS]


def paper_inventory_by_layer() -> Dict[Layer, List[Concern]]:
    out: Dict[Layer, List[Concern]] = {layer: [] for layer in Layer}
    for concern in paper_inventory():
        out[concern.layer].append(concern)
    return out


def user_column_items() -> List[Concern]:
    """The subset of the inventory that exists only because the user is in
    the model — dropping the user column loses all of these."""
    return [Concern(text, layer, column, source="stated")
            for layer, column, user, text in _PAPER_ITEMS if user]


def layer_counts() -> Dict[Layer, int]:
    counts: Dict[Layer, int] = {layer: 0 for layer in Layer}
    for layer, _column, _user, _text in _PAPER_ITEMS:
        counts[layer] += 1
    return counts
