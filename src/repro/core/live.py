"""Build an LPC model straight from a live deployment.

``model_from_room`` inspects an assembled Smart Projector room (any object
shaped like :class:`repro.experiments.workloads.Room`) plus a presenter
description, creates the model entities with facets backed by the *actual*
library objects, and runs every applicable cross-column constraint check —
one call from "running system" to "layered analysis".
"""

from __future__ import annotations

from typing import Optional

from ..phys.human import PhysicalProfile
from ..resource.faculties import FacultyProfile, researcher
from ..user.goals import presentation_goal, research_prototype_purpose
from .constraints import (
    check_intentional_harmony,
    check_physical_compatibility,
    check_radio_environment,
    check_resource_match,
)
from .entities import ModelEntity
from .layers import Layer
from .model import LPCModel


def model_from_room(room, *,
                    presenter_faculties: Optional[FacultyProfile] = None,
                    presenter_body: Optional[PhysicalProfile] = None,
                    goal=None, purpose=None) -> LPCModel:
    """Construct and pre-check an LPC model for a running room.

    Args:
        room: an assembled deployment (``projector_room()`` result).
        presenter_faculties: the presenter's skills (default: researcher —
            the paper's intended user).
        presenter_body: the presenter's physiology.
        goal / purpose: intentional-layer artifacts (defaults: the paper's
            presentation goal and research-prototype purpose).
    """
    faculties = presenter_faculties or researcher("presenter")
    body = presenter_body or PhysicalProfile("presenter")
    goal = goal or presentation_goal()
    purpose = purpose or research_prototype_purpose()

    model = LPCModel(f"deployment:{room.adapter.name}")

    presenter = ModelEntity("presenter", "user")
    presenter.add_facet(Layer.PHYSICAL, "the presenter's body", body)
    presenter.add_facet(Layer.RESOURCE, "the presenter's faculties",
                        faculties)
    presenter.add_facet(Layer.INTENTIONAL, goal.name, goal)
    model.add_entity(presenter)

    laptop = ModelEntity(room.laptop.name, "device")
    laptop.add_facet(Layer.PHYSICAL, "presentation laptop", room.laptop.form)
    laptop.add_facet(Layer.RESOURCE, "laptop platform", room.laptop.platform)
    model.add_entity(laptop)

    projector = ModelEntity(room.adapter.name, "device")
    projector.add_facet(Layer.PHYSICAL, "adapter + projector hardware",
                        room.adapter.form)
    projector.add_facet(Layer.RESOURCE, "adapter platform",
                        room.adapter.platform)
    projector.add_facet(Layer.ABSTRACT, "projection & control services",
                        room.smart)
    projector.add_facet(Layer.INTENTIONAL, purpose.name, purpose)
    model.add_entity(projector)

    lookup = ModelEntity(room.registry.registry_id, "infrastructure")
    lookup.add_facet(Layer.RESOURCE, "lookup service presence",
                     room.registry)
    lookup.add_facet(Layer.ABSTRACT, "registration/lookup/leases",
                     room.registry)
    model.add_entity(lookup)

    # Constraint checks against the live geometry and artifacts. ---------
    distance = float(room.world.distances_from(
        room.laptop.name, [room.adapter.name])[0])
    model.record_check(check_radio_environment(
        room.medium.propagation, distance, required_rate_bps=2e6,
        subject=f"{room.laptop.name}->{room.adapter.name} link"))
    model.record_check(check_physical_compatibility(room.laptop.form, body))
    if room.laptop.platform is not None:
        model.record_check(check_resource_match(room.laptop.platform,
                                                faculties))
    if room.adapter.platform is not None:
        model.record_check(check_resource_match(room.adapter.platform,
                                                faculties))
    model.record_check(check_intentional_harmony(purpose, goal, faculties))
    return model
