"""Scenario builders shared by the experiments and examples.

:func:`projector_room` assembles the paper's complete deployment — world,
2.4 GHz medium, Jini-style lookup on a hub machine, the presenter's
laptop, the Aroma Adapter with its projector, and discovery clients —
exactly once, so every experiment measures the same system the examples
demonstrate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..discovery.client import ServiceDiscoveryClient
from ..discovery.protocol import AnnouncingRegistry, RegistryLocator
from ..discovery.registry import LookupService, REGISTRY_PORT
from ..env.radio import PropagationModel, RateMode
from ..env.world import World
from ..kernel.scheduler import Simulator
from ..net.addresses import BROADCAST
from ..net.frames import Frame
from ..phys.devices import AromaAdapter, Device, DigitalProjector, Laptop
from ..phys.mac import CsmaMac, WirelessMedium
from ..services.projector import SmartProjector, SmartProjectorClient


@dataclass
class Room:
    """One assembled deployment."""

    sim: Simulator
    world: World
    medium: WirelessMedium
    hub: Device
    registry: LookupService
    announcer: AnnouncingRegistry
    laptop: Laptop
    adapter: AromaAdapter
    projector: DigitalProjector
    smart: SmartProjector
    adapter_discovery: ServiceDiscoveryClient
    laptop_discovery: ServiceDiscoveryClient
    client: SmartProjectorClient


def projector_room(seed: int = 0, *, trace: bool = True,
                   width: float = 40.0, height: float = 25.0,
                   laptop_pos: Tuple[float, float] = (8.0, 8.0),
                   adapter_pos: Tuple[float, float] = (30.0, 18.0),
                   hub_pos: Tuple[float, float] = (20.0, 12.0),
                   channel: int = 6,
                   fixed_rate: Optional[RateMode] = None,
                   use_session_leases: bool = True,
                   session_lease_s: float = 60.0,
                   registration_lease_s: float = 60.0,
                   announce_interval: float = 5.0,
                   viewer_fps: float = 15.0,
                   register: bool = True,
                   culling: bool = True,
                   batching: bool = True,
                   trace_mode: str = "head",
                   trace_capacity: Optional[int] = None,
                   backend: Optional[str] = None) -> Room:
    """Build the Smart Projector room.

    When ``register`` is True the adapter registers both services as soon
    as it discovers the lookup service (a few hundred milliseconds in).
    ``culling=False`` makes the medium scan every station exhaustively —
    outcome-identical, used to validate the spatial-grid fast path.
    ``batching=False`` likewise pins the kernel to the legacy per-event
    heap — the oracle the batched timer path is held byte-identical to.
    ``trace_mode`` / ``trace_capacity`` / ``backend`` pass straight
    through to :class:`Simulator` so the dispatch-matrix oracle can run
    the same room under every run-loop variant.
    """
    sim = Simulator(seed=seed, trace=trace, trace_capacity=trace_capacity,
                    trace_mode=trace_mode, batching=batching,
                    backend=backend)
    world = World(width, height)
    medium = WirelessMedium(sim, world, culling=culling)

    hub = Device(sim, world, "hub", hub_pos, medium=medium, channel=channel,
                 fixed_rate=fixed_rate)
    laptop = Laptop(sim, world, "laptop", laptop_pos, medium,
                    channel=channel, fixed_rate=fixed_rate)
    adapter = AromaAdapter(sim, world, "adapter", adapter_pos, medium,
                           channel=channel, fixed_rate=fixed_rate)
    projector = DigitalProjector(sim, world, "beamer",
                                 (adapter_pos[0] + 1.0, adapter_pos[1]))
    adapter.connect_projector(projector)

    registry = LookupService(sim, hub, "registry")
    announcer = AnnouncingRegistry(
        sim, hub, RegistryLocator("registry", hub.name, REGISTRY_PORT),
        announce_interval=announce_interval)

    smart = SmartProjector(sim, adapter,
                           use_session_leases=use_session_leases,
                           session_lease_s=session_lease_s,
                           viewer_fps=viewer_fps)

    adapter_discovery = ServiceDiscoveryClient(sim, adapter)
    if register:
        adapter_discovery.discover(
            lambda _loc: smart.register(adapter_discovery,
                                        registration_lease_s))

    laptop_discovery = ServiceDiscoveryClient(sim, laptop)
    laptop_discovery.discover()
    client = SmartProjectorClient(sim, laptop, laptop_discovery)

    return Room(sim, world, medium, hub, registry, announcer, laptop,
                adapter, projector, smart, adapter_discovery,
                laptop_discovery, client)


# ---------------------------------------------------------------------------
# Interferer traffic for the density experiments
# ---------------------------------------------------------------------------

@dataclass
class InterfererPair:
    sender: Device
    receiver: Device


def interferer_field(room: Room, pairs: int, *,
                     channel_plan: str = "cochannel",
                     frame_bytes: int = 1000,
                     frames_per_second: float = 50.0,
                     seed_stream: str = "interferers") -> List[InterfererPair]:
    """Drop ``pairs`` chattering device pairs into the room.

    ``channel_plan``: ``"cochannel"`` puts everyone on the room's channel
    (the paper's worry), ``"spread"`` distributes pairs over the 1/6/11
    non-overlapping plan (the mitigation).
    """
    from ..env.spectrum import NON_OVERLAPPING

    sim = room.sim
    rng = sim.rng(seed_stream)
    out: List[InterfererPair] = []
    for i in range(pairs):
        if channel_plan == "cochannel":
            channel = room.laptop.nic.channel
        elif channel_plan == "spread":
            channel = NON_OVERLAPPING[i % len(NON_OVERLAPPING)]
        else:
            raise ValueError(f"unknown channel plan {channel_plan!r}")
        ax, ay = rng.uniform(0, room.world.width), rng.uniform(0, room.world.height)
        bx = min(room.world.width, ax + rng.uniform(1.0, 5.0))
        by = min(room.world.height, ay + rng.uniform(1.0, 5.0))
        sender = Device(sim, room.world, f"ifs-{i}", (ax, ay),
                        medium=room.medium, channel=channel)
        receiver = Device(sim, room.world, f"ifr-{i}", (bx, by),
                          medium=room.medium, channel=channel)
        interval = 1.0 / frames_per_second
        # Stagger the start so the pairs don't phase-lock.
        sim.every(interval,
                  lambda s=sender, r=receiver: s.nic.send(
                      r.name, None, frame_bytes),
                  start=float(rng.uniform(0, interval)))
        out.append(InterfererPair(sender, receiver))
    return out


# ---------------------------------------------------------------------------
# Broadcast-heavy scale workload (audibility-culling benchmark + equivalence)
# ---------------------------------------------------------------------------

@dataclass
class BroadcastRoom:
    """A large flat population of broadcasting stations."""

    sim: Simulator
    world: World
    medium: WirelessMedium
    macs: List[CsmaMac]
    deliveries: List[Tuple[float, str, str]]


def broadcast_room(stations: int, *, seed: int = 7, culling: bool = True,
                   width: float = 1200.0, height: float = 1200.0,
                   exponent: float = 4.0, sigma_db: float = 2.0,
                   tx_power_dbm: float = 0.0, channel: int = 6,
                   frames_per_second: float = 2.0,
                   frame_bytes: int = 66,
                   trace: bool = False,
                   batching: bool = True) -> BroadcastRoom:
    """Scatter ``stations`` broadcasting MACs over a large world.

    The geometry is deliberately sparse (high path-loss exponent, modest
    transmit power, kilometre-scale world) so each sender is audible to a
    small neighbourhood — the regime where audibility culling pays.  Every
    delivered frame is appended to ``deliveries`` as ``(time, src, rx)``,
    giving the equivalence tests a byte-comparable outcome log.
    """
    sim = Simulator(seed=seed, trace=trace, batching=batching)
    world = World(width, height)
    propagation = PropagationModel(exponent=exponent,
                                   shadowing_sigma_db=sigma_db,
                                   rng=sim.rng("radio.shadowing"))
    medium = WirelessMedium(sim, world, propagation=propagation,
                            culling=culling)

    placement_rng = sim.rng("scale.placement")
    traffic_rng = sim.rng("scale.traffic")
    deliveries: List[Tuple[float, str, str]] = []
    macs: List[CsmaMac] = []
    for i in range(stations):
        name = f"st-{i}"
        world.place(name, (placement_rng.uniform(0, width),
                           placement_rng.uniform(0, height)))
        mac = CsmaMac(sim, medium, name, channel=channel,
                      tx_power_dbm=tx_power_dbm)
        mac.on_receive = (lambda frame, rx=name:
                          deliveries.append((sim.now, frame.src, rx)))
        macs.append(mac)

    interval = 1.0 / frames_per_second
    for mac in macs:
        sim.every(interval,
                  lambda m=mac: m.send(Frame(m.address, BROADCAST,
                                             payload_bytes=frame_bytes)),
                  start=float(traffic_rng.uniform(0, interval)))
    return BroadcastRoom(sim, world, medium, macs, deliveries)


def presentation_workflow(room: Room,
                          on_done: Optional[Callable[[bool], None]] = None,
                          start_delay: float = 2.0) -> None:
    """Run the full happy-path presenter workflow (all eight steps in
    order) via callbacks — used by experiments that need a projecting
    room without simulating user error."""
    client = room.client

    def fail(reason):
        if on_done is not None:
            on_done(False)

    def step_discover() -> None:
        client.discover_services(lambda ok, v: step_acquire_p()
                                 if ok else fail(v))

    def step_acquire_p() -> None:
        client.acquire_projection(lambda ok, v: step_acquire_c()
                                  if ok else fail(v))

    def step_acquire_c() -> None:
        client.acquire_control(lambda ok, v: step_vnc() if ok else fail(v))

    def step_vnc() -> None:
        client.start_vnc_server()
        client.power_projector(True, lambda ok, v: step_start()
                               if ok else fail(v))

    def step_start() -> None:
        client.start_projection(lambda ok, v: (on_done(ok)
                                               if on_done else None))

    room.sim.schedule(start_delay, step_discover)
