"""E1 — remote projection vs wireless bandwidth.

Reproduces the paper's physical-layer finding: "One physical layer issue
that we have encountered is the relatively low bandwidth of current
wireless networking adapters.  Their use in our application prevents us
from displaying rapid animation."

We pin the PHY rate to each 802.11b mode and run the full VNC pipeline
under two content workloads.  Expected shape: slide decks are delivered
at their content rate at *every* rate; animation frame rate collapses as
the link slows, with the knee between 5.5 and 2 Mb/s.
"""

from __future__ import annotations

from typing import Sequence

from ..env.radio import RATE_BY_NAME
from ..services.content import Animation, SlideShow
from ..services.vnc import VNCServer, VNCViewer
from .harness import ExperimentResult, experiment
from .workloads import projector_room


def _run_one(rate_name: str, content_kind: str, seed: int,
             duration: float, viewer_fps: float) -> dict:
    room = projector_room(seed=seed, trace=False,
                          fixed_rate=RATE_BY_NAME[rate_name],
                          register=False)
    sim = room.sim
    room.projector.power(True)

    server = VNCServer(sim, room.laptop, room.client.fb)
    server.start()
    if content_kind == "slides":
        generator = SlideShow(sim, room.client.fb, dwell_s=10.0)
        offered_fps = 1.0 / 10.0
    elif content_kind == "animation":
        generator = Animation(sim, room.client.fb, fps=15.0)
        offered_fps = 15.0
    else:
        raise ValueError(f"unknown content {content_kind!r}")
    generator.start()

    viewer = VNCViewer(sim, room.adapter, room.laptop.name,
                       room.adapter.drive_display, target_fps=viewer_fps)
    viewer.start()
    sim.run(until=duration)

    latency = viewer.latency.summary()
    return {
        "rate": rate_name,
        "content": content_kind,
        "offered_fps": offered_fps,
        "displayed_fps": viewer.frames_displayed / duration,
        "delivery_ratio": min(1.0, (viewer.frames_displayed / duration)
                              / offered_fps),
        "goodput_mbps": viewer.goodput_bps(duration) / 1e6,
        "update_latency_p50_s": latency.p50,
        "stalls": viewer.stalls,
    }


@experiment("E1")
def run(rates: Sequence[str] = ("1Mbps", "2Mbps", "5.5Mbps", "11Mbps"),
        duration: float = 60.0, seed: int = 1,
        viewer_fps: float = 15.0) -> ExperimentResult:
    """Displayed frame rate vs link rate, slides vs animation."""
    result = ExperimentResult(
        "E1", "VNC projection vs wireless bandwidth (slides vs animation)",
        ["rate", "content", "offered_fps", "displayed_fps", "delivery_ratio",
         "goodput_mbps", "update_latency_p50_s", "stalls"])
    for rate_name in rates:
        for content in ("slides", "animation"):
            result.add_row(**_run_one(rate_name, content, seed, duration,
                                      viewer_fps))
    result.notes.append(
        "paper: slides survive every rate; rapid animation is prevented "
        "by low-bandwidth adapters")
    return result


@experiment("E1-replicated")
def run_replicated(seeds: Sequence[int] = (1, 2, 3),
                   duration: float = 25.0) -> ExperimentResult:
    """E1's animation cell replicated over seeds with common random
    numbers, seed-averaged — the statistical-confidence variant built on
    :mod:`repro.experiments.sweeps`."""
    from .sweeps import averaged_over_seeds, grid, sweep

    def run_one(seed: int, rate: str) -> dict:
        row = _run_one(rate, "animation", seed, duration, 15.0)
        return {"displayed_fps": row["displayed_fps"],
                "goodput_mbps": row["goodput_mbps"]}

    raw = sweep("E1-replicated", "animation fps vs rate, multi-seed",
                run_one, grid(rate=["2Mbps", "11Mbps"]), seeds=tuple(seeds))
    averaged = averaged_over_seeds(raw, group_by=("rate",),
                                   metrics=("displayed_fps", "goodput_mbps"))
    averaged.notes.append(
        f"{len(seeds)} replicates per cell with common random numbers")
    return averaged


@experiment("E1-ablation")
def run_encoding_ablation(duration: float = 40.0, seed: int = 1) -> ExperimentResult:
    """Ablation: dirty-rectangle encoding vs full-frame refetch.

    Full-frame is simulated by resetting the viewer's seen-version to 0
    before each poll, forcing the server to resend the whole screen — the
    design choice that makes remote framebuffers viable on 2 Mb/s radios.
    """
    result = ExperimentResult(
        "E1-ablation", "dirty-rect vs full-frame encoding at 2 Mb/s",
        ["encoding", "displayed_fps", "goodput_mbps", "bytes_per_update"])
    for encoding in ("dirty-rect", "full-frame"):
        room = projector_room(seed=seed, trace=False,
                              fixed_rate=RATE_BY_NAME["2Mbps"],
                              register=False)
        sim = room.sim
        room.projector.power(True)
        server = VNCServer(sim, room.laptop, room.client.fb)
        server.start()
        SlideShow(sim, room.client.fb, dwell_s=10.0).start()
        viewer = VNCViewer(sim, room.adapter, room.laptop.name,
                           room.adapter.drive_display, target_fps=15.0)
        if encoding == "full-frame":
            original = viewer._request

            def degraded_request(v=viewer, fn=original):
                v.last_version = 0
                fn()

            viewer._request = degraded_request  # type: ignore[assignment]
        viewer.start()
        sim.run(until=duration)
        updates = max(1, viewer.updates_received)
        result.add_row(encoding=encoding,
                       displayed_fps=viewer.frames_displayed / duration,
                       goodput_mbps=viewer.goodput_bps(duration) / 1e6,
                       bytes_per_update=viewer.bytes_received / updates)
    return result
