"""E2 — 2.4 GHz device density.

"There are many wireless devices operating in the 2.4GHz radio band, and
the effect of a high concentration of these devices needs to be studied."
We study it: one measured link carries steady traffic while 0..N
co-channel interferer pairs chatter around it.  Expected shape: per-link
goodput and delivery ratio fall monotonically with density, retry/backoff
overhead rises; spreading interferers over channels 1/6/11 recovers most
of the loss.
"""

from __future__ import annotations

from functools import partial
from typing import Sequence

from ..metrics.stats import jains_fairness
from ..telemetry.streaming import StreamingAggregator
from ..telemetry.summary import telemetry_summary
from .harness import ExperimentResult, experiment
from .sweeps import sweep
from .workloads import interferer_field, projector_room


def _measure_density(pairs: int, channel_plan: str, seed: int,
                     duration: float, offered_fps: float,
                     frame_bytes: int) -> dict:
    room = projector_room(seed=seed, trace=False, register=False)
    sim = room.sim
    # Fold issue telemetry incrementally instead of replaying the record
    # list afterwards — with trace=False only issues are emitted, so the
    # streaming summary is byte-identical to the replay one, and only the
    # folded aggregate crosses the fork pipe in parallel sweeps.
    aggregator = StreamingAggregator().attach(sim)
    field = interferer_field(room, pairs, channel_plan=channel_plan)

    # The measured link: laptop -> adapter steady unicast stream.
    interval = 1.0 / offered_fps
    sim.every(interval,
              lambda: room.laptop.nic.send(room.adapter.name, None,
                                           frame_bytes),
              start=interval)
    sim.run(until=duration)

    stats = room.laptop.nic.stats
    offered = stats["enqueued"]
    delivered = stats["tx_success"]
    # Fairness across all senders that offered traffic.
    shares = [room.laptop.nic.mac.stats["tx_success"]]
    shares += [p.sender.nic.mac.stats["tx_success"] for p in field]
    return {
        "interferer_pairs": pairs,
        "channel_plan": channel_plan,
        "delivery_ratio": delivered / offered if offered else 0.0,
        "goodput_kbps": 8.0 * delivered * frame_bytes / duration / 1e3,
        "queue_drops": stats["queue_drops"],
        "retry_drops": stats["tx_retry_drops"],
        "backoffs_per_frame": (stats["backoffs"] / max(1.0, stats["tx_attempts"])),
        "fairness": jains_fairness(shares),
        # Per-point health summary; sweep() lifts this reserved key onto
        # ExperimentResult.telemetry (it never enters the table, and only
        # this small dict crosses the fork pipe in parallel runs).
        "telemetry": telemetry_summary(sim, stream=aggregator),
    }


def _measure_density_row(seed: int, pairs: int, channel_plan: str,
                         duration: float = 20.0, offered_fps: float = 150.0,
                         frame_bytes: int = 1000) -> dict:
    """``sweep``-shaped wrapper around :func:`_measure_density` (module
    level so parallel workers can reach it)."""
    return _measure_density(pairs, channel_plan, seed, duration,
                            offered_fps, frame_bytes)


@experiment("E2")
def run(densities: Sequence[int] = (0, 2, 4, 8, 16, 32),
        duration: float = 20.0, seed: int = 2,
        offered_fps: float = 150.0, frame_bytes: int = 1000,
        channel_plans: Sequence[str] = ("cochannel", "spread"),
        workers: int = 0, cache=None) -> ExperimentResult:
    """Goodput/loss vs interferer density, co-channel vs spread plans.

    The measured link offers ~1.2 Mb/s; each interferer pair offers
    ~0.4 Mb/s, so a handful of co-channel pairs saturates the cell.

    Each (plan, density) point is one independent simulation, so the sweep
    parallelises across ``workers`` processes with identical output — and,
    because ``run_one`` here is a partial over a module-level function,
    memoizes through the run cache when ``cache`` is enabled.
    """
    points = [{"pairs": pairs, "channel_plan": plan}
              for plan in channel_plans for pairs in densities]
    result = sweep(
        "E2", "effect of 2.4 GHz device concentration on one link",
        partial(_measure_density_row, duration=duration,
                offered_fps=offered_fps, frame_bytes=frame_bytes),
        points, seeds=(seed,),
        columns=["interferer_pairs", "channel_plan", "delivery_ratio",
                 "goodput_kbps", "queue_drops", "retry_drops",
                 "backoffs_per_frame", "fairness"],
        workers=workers, cache=cache)
    result.notes.append(
        "paper: high concentration of 2.4 GHz devices degrades operation; "
        "non-overlapping channel plan (1/6/11) is the classic mitigation")
    return result


@experiment("E2-autochannel")
def run_autochannel(pairs: int = 16, duration: float = 20.0,
                    seed: int = 27, offered_fps: float = 150.0,
                    frame_bytes: int = 1000) -> ExperimentResult:
    """Self-configuration ablation: a congested link scans the band and
    retunes itself.

    The interferers squat on the room's default channel; at t=duration/2
    the measured pair runs ``scan_and_select`` — the "self-configuring"
    networking the paper's resource layer demands instead of a user
    playing administrator.  Goodput before vs after tells the story.
    """
    result = ExperimentResult(
        "E2-autochannel", "channel self-configuration under congestion",
        ["phase", "goodput_kbps", "channel"])
    room = projector_room(seed=seed, trace=False, register=False)
    sim = room.sim
    interferer_field(room, pairs, channel_plan="cochannel")
    interval = 1.0 / offered_fps
    sim.every(interval, lambda: room.laptop.nic.send(
        room.adapter.name, None, frame_bytes), start=interval)

    half = duration / 2.0
    snapshots = {}

    def snapshot(phase: str) -> None:
        snapshots[phase] = room.laptop.nic.mac.stats["tx_success"]

    def retune() -> None:
        snapshot("mid")
        choice = room.laptop.nic.mac.scan_and_select()
        room.adapter.nic.mac.set_channel(choice)

    sim.schedule(half, retune)
    sim.run(until=duration)
    snapshot("end")

    before = snapshots["mid"]
    after = snapshots["end"] - snapshots["mid"]
    result.add_row(phase="congested (before scan)",
                   goodput_kbps=8.0 * before * frame_bytes / half / 1e3,
                   channel=6)
    result.add_row(phase="self-configured (after scan)",
                   goodput_kbps=8.0 * after * frame_bytes / half / 1e3,
                   channel=room.laptop.nic.channel)
    result.notes.append(
        "the scan moves the link off the congested channel without any "
        "human intervention; goodput recovers to the clean-channel rate")
    return result
