"""E4 — service discovery and the stale-session problem.

Two measurements from the paper's abstract layer:

* **discovery latency** — how long a fresh client takes to find the
  lookup service, as interferer density (hence multicast loss) grows;
* **stale-session recovery** — "mechanisms ... to deal with users who
  forget to relinquish control of the projector without relying on a
  system administrator".  User A acquires the projection session and
  vanishes; user B retries.  With leases, B's wait is bounded by the
  lease duration; without leases, B waits for an administrator (or
  forever).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..kernel.errors import SessionError
from .harness import ExperimentResult, experiment
from .workloads import projector_room


@experiment("E4-discovery")
def run_discovery(distances: Sequence[float] = (20.0, 120.0, 170.0, 190.0,
                                                210.0, 230.0),
                  repeats: int = 5, horizon: float = 30.0,
                  seed: int = 5) -> ExperimentResult:
    """Registrar discovery latency vs range to the lookup service.

    Multicast probes and announcements are unacknowledged broadcast
    frames at the 1 Mb/s base rate.  Within comfortable range discovery
    is a millisecond affair; near the edge of the radio's range frames are
    lost and the client waits for later probe rounds (1 s apart) or the
    next periodic announcement (10 s) — and beyond range, discovery fails
    outright.  CSMA carrier sense makes discovery remarkably robust to
    mere *density*, which is itself a finding; range is what kills it.
    """
    result = ExperimentResult(
        "E4-discovery", "lookup-service discovery latency vs range",
        ["distance_m", "mean_latency_s", "max_latency_s", "failures"])
    for distance in distances:
        latencies = []
        failures = 0
        for r in range(repeats):
            room = projector_room(seed=seed + 1000 * r, trace=False,
                                  register=False, announce_interval=10.0,
                                  width=500.0, height=20.0,
                                  hub_pos=(10.0, 10.0),
                                  laptop_pos=(10.0 + distance, 10.0),
                                  adapter_pos=(12.0, 10.0))
            # A fresh client arrives two seconds in and actively probes.
            room.sim.schedule(2.0, room.laptop_discovery.agent.discover)
            room.sim.run(until=horizon)
            times = room.laptop_discovery.agent.discovery_times
            if "registry" in times:
                latencies.append(times["registry"])
            else:
                failures += 1
        result.add_row(distance_m=distance,
                       mean_latency_s=(sum(latencies) / len(latencies)
                                       if latencies else float("nan")),
                       max_latency_s=max(latencies) if latencies else float("nan"),
                       failures=failures)
    result.notes.append("latency stretches toward the probe/announce "
                        "periods near the edge of range, then discovery "
                        "fails entirely")
    return result


def _stale_session_wait(lease_s: Optional[float], admin_after_s: Optional[float],
                        seed: int, horizon: float, retry_interval: float) -> dict:
    """User A acquires and forgets; measure user B's wait."""
    room = projector_room(seed=seed, trace=False, register=False,
                          use_session_leases=lease_s is not None,
                          session_lease_s=lease_s or 60.0)
    sim = room.sim
    sessions = room.smart.projection_sessions

    sessions.acquire("forgetful-user", lease_s or 60.0)
    outcome = {"acquired_at": None, "denials": 0}

    def try_acquire() -> None:
        if outcome["acquired_at"] is not None:
            return
        try:
            sessions.acquire("patient-user", lease_s or 60.0)
            outcome["acquired_at"] = sim.now
        except SessionError:
            outcome["denials"] += 1
            sim.schedule(retry_interval, try_acquire)

    sim.schedule(retry_interval, try_acquire)
    if admin_after_s is not None:
        sim.schedule(admin_after_s, sessions.force_release, "admin")
    sim.run(until=horizon)

    wait = (outcome["acquired_at"] if outcome["acquired_at"] is not None
            else float("inf"))
    return {
        "policy": (f"lease={lease_s:.0f}s" if lease_s is not None else
                   ("admin intervention" if admin_after_s is not None
                    else "no lease, no admin")),
        "wait_s": wait,
        "denials": outcome["denials"],
        "evictions": sessions.evictions,
    }


@experiment("E4-stale")
def run_stale(lease_durations: Sequence[float] = (10.0, 30.0, 60.0),
              admin_after_s: float = 300.0, horizon: float = 400.0,
              retry_interval: float = 2.0, seed: int = 6) -> ExperimentResult:
    """Wait for the projector after a user forgets to release it."""
    result = ExperimentResult(
        "E4-stale", "stale-session recovery: leases vs administrator",
        ["policy", "wait_s", "denials", "evictions"])
    for lease_s in lease_durations:
        result.add_row(**_stale_session_wait(lease_s, None, seed, horizon,
                                             retry_interval))
    result.add_row(**_stale_session_wait(None, admin_after_s, seed, horizon,
                                         retry_interval))
    result.add_row(**_stale_session_wait(None, None, seed, horizon,
                                         retry_interval))
    result.notes.append(
        "leases bound the wait by the lease duration; without them the "
        "next user depends on an administrator — or waits forever")
    return result


@experiment("E4-orders")
def run_orders(contenders: int = 2, repeats: int = 20,
               seed: int = 24, hold_s: float = 5.0) -> ExperimentResult:
    """Multiple users, different orders: split vs atomic acquisition.

    Two presenters need *both* services.  Under split acquisition, user A
    grabs projection-then-control while user B grabs control-then-
    projection; when their first grabs interleave, each holds half and
    neither completes — deadlock until the leases expire.  The atomic
    ``acquire_both`` operation removes the interleaving.  Measures the
    fraction of contended rounds that deadlock and the time both users
    take to finish.
    """
    result = ExperimentResult(
        "E4-orders", "split vs atomic acquisition under contention",
        ["strategy", "rounds", "deadlocks", "mean_completion_s"])
    for strategy in ("split", "atomic"):
        deadlocks = 0
        completion_times = []
        for r in range(repeats):
            room = projector_room(seed=seed + r, trace=False,
                                  register=False, session_lease_s=30.0)
            sim = room.sim
            smart = room.smart
            done = {}

            def make_user(name: str, order, strategy=strategy,
                          smart=smart, sim=sim, done=done) -> None:
                tokens = {}

                def release_all() -> None:
                    if "projection" in tokens:
                        smart.projection_sessions.release(tokens["projection"])
                    if "control" in tokens:
                        smart.control_sessions.release(tokens["control"])
                    done[name] = sim.now

                if strategy == "atomic":
                    try:
                        grant = smart._proj_acquire_both(name, owner=name)
                        tokens["projection"] = grant["token"]
                        tokens["control"] = grant["control_token"]
                        sim.schedule(hold_s, release_all)
                    except SessionError:
                        # Busy: retry shortly (bounded wait, no deadlock).
                        sim.schedule(1.0, make_user, name, order)
                    return
                # Split strategy: grab the two sessions one at a time in
                # the user's own order, retrying each half.
                managers = {"projection": smart.projection_sessions,
                            "control": smart.control_sessions}

                def grab(index: int) -> None:
                    if index == len(order):
                        sim.schedule(hold_s, release_all)
                        return
                    which = order[index]
                    try:
                        session = managers[which].acquire(name, 30.0)
                        tokens[which] = session.token
                        sim.schedule(0.1, grab, index + 1)
                    except SessionError:
                        # Holds whatever it already has and retries —
                        # the deadlock recipe.
                        sim.schedule(1.0, grab, index)

                grab(0)

            # User B arrives a beat after A (jittered): sometimes A wins
            # both halves before B starts, sometimes their grabs
            # interleave — the realistic mix of orders.
            jitter = float(sim.rng("e4orders").uniform(0.0, 0.3))
            sim.schedule(1.0, make_user, "user-A", ("projection", "control"))
            sim.schedule(1.0 + jitter, make_user, "user-B",
                         ("control", "projection"))
            sim.run(until=25.0)
            if len(done) < 2:
                deadlocks += 1
            else:
                completion_times.append(max(done.values()))
        result.add_row(strategy=strategy, rounds=repeats,
                       deadlocks=deadlocks,
                       mean_completion_s=(sum(completion_times)
                                          / len(completion_times)
                                          if completion_times
                                          else float("inf")))
    result.notes.append(
        "split acquisition in opposite orders deadlocks until leases "
        "expire; one atomic all-or-nothing operation eliminates it")
    return result


@experiment("E4-proxy")
def run_proxy_download(code_sizes: Sequence[int] = (1024, 8192, 32768, 65536),
                       rates: Sequence[str] = ("11Mbps", "1Mbps"),
                       seed: int = 22, horizon: float = 30.0) -> ExperimentResult:
    """Mobile code on slow radios.

    "Mobile code and data" is one of Aroma's four research areas: Jini
    clients *download* a service's proxy object at lookup time.  The
    lookup reply's wire size includes the proxy code, so bind time grows
    with proxy size — painfully so at 1 Mb/s.  Measures time from lookup
    request to proxy in hand.
    """
    from ..discovery.records import ServiceItem, ServiceProxy, ServiceTemplate, new_service_id
    from ..env.radio import RATE_BY_NAME

    result = ExperimentResult(
        "E4-proxy", "proxy (mobile code) download time vs size and rate",
        ["rate", "proxy_kb", "bind_time_s"])
    for rate_name in rates:
        for code_bytes in code_sizes:
            room = projector_room(seed=seed, trace=False, register=False,
                                  fixed_rate=RATE_BY_NAME[rate_name])
            sim = room.sim
            item = ServiceItem(new_service_id(), "fat-service",
                               ServiceProxy("adapter", 44, "fat",
                                            code_bytes=code_bytes))
            room.adapter_discovery.discover(
                lambda _loc, it=item, d=room.adapter_discovery:
                d.register(it, 60.0))
            timing = {}

            def look(room=room, timing=timing) -> None:
                timing["asked"] = room.sim.now
                room.laptop_discovery.find(
                    ServiceTemplate(service_type="fat-service"),
                    lambda items, t=timing, s=room.sim:
                    t.update(bound=s.now) if items else None)

            sim.schedule(2.0, look)
            sim.run(until=horizon)
            bind = (timing.get("bound", float("nan"))
                    - timing.get("asked", 0.0))
            result.add_row(rate=rate_name, proxy_kb=code_bytes / 1024,
                           bind_time_s=bind)
    result.notes.append("bind time ≈ proxy size / link rate + MAC overhead; "
                        "mobile code is nearly free at 11 Mb/s and a "
                        "half-second affair at 1 Mb/s for 64 kB proxies")
    return result


@experiment("E4-hijack")
def run_hijack(attempts: int = 50, seed: int = 7) -> ExperimentResult:
    """Session tokens versus a squatter replaying guessed tokens."""
    result = ExperimentResult(
        "E4-hijack", "hijack prevention by session tokens",
        ["attacker_attempts", "hijacks_succeeded", "invalid_tokens_logged"])
    room = projector_room(seed=seed, trace=False, register=False)
    sessions = room.smart.projection_sessions
    session = sessions.acquire("legitimate", 60.0)
    rng = room.sim.rng("attacker")
    hijacks = 0
    for _ in range(attempts):
        guess = f"tok-{int(rng.integers(1, 1000))}-{int(rng.integers(1, 1 << 30))}"
        if sessions.validate(guess):
            hijacks += 1
    assert sessions.validate(session.token)
    result.add_row(attacker_attempts=attempts, hijacks_succeeded=hijacks,
                   invalid_tokens_logged=sessions.invalid_tokens)
    return result
