"""E9 — regenerating the paper's analysis section from observation.

The paper's claim for its model is that it "quickly reveals issues that
must be addressed".  We test that end to end: run the full Smart
Projector deployment through a scripted week-in-the-lab — a happy-path
talk, a forgetful presenter, a contended projector, an interference
burst, an infrastructure fault with a casual user, a non-anglophone
visitor, a voice-control trial in a noisy room — with the
:class:`~repro.core.instrument.LPCInstrument` attached, then measure how
much of the paper's own issue inventory the classified observations
cover.

The ablation answers the paper's core argument quantitatively: with the
user column removed, most of the inventory becomes invisible.
"""

from __future__ import annotations


from ..core.analysis import compare_with_paper
from ..core.instrument import LPCInstrument
from ..core.model import smart_projector_model
from ..env.noise import AcousticField, NoiseSource, TYPICAL_LEVELS_DB
from ..kernel.errors import SessionError
from ..phys.ergonomics import tether_constraint
from ..phys.human import PhysicalUser, SpeechRecognizer
from ..phys.devices import laptop_form
from ..resource.faculties import casual_user, international_visitor
from ..resource.matching import match
from ..services.content import Animation
from ..services.errorsvc import FaultInjector, human_repair_model
from ..services.vnc import VNCViewer
from ..user.behavior import Procedure, Step, UserAgent
from ..user.goals import (
    harmony,
    presentation_goal,
    research_prototype_purpose,
)
from ..user.physiology import sample_physical_profile
from .harness import ExperimentResult, experiment
from .workloads import presentation_workflow, projector_room

#: frustration topic -> issue topic used when re-emitting match() findings.
_FRUSTRATION_TOPICS = {"language": "language", "ui": "faculty",
                       "admin": "admin", "storage": "storage",
                       "execution": "execution"}


def _scripted_week(seed: int = 42, horizon: float = 240.0):
    """Build and run the incident script; returns (room, model, instrument)."""
    room = projector_room(seed=seed, trace=True, session_lease_s=20.0,
                          registration_lease_s=30.0)
    sim = room.sim
    model = smart_projector_model()
    instrument = LPCInstrument(sim, model,
                               user_sources={"presenter", "casual-1",
                                             "visitor-1"})

    # --- Act 1: happy-path presentation (t=2..) --------------------------
    presentation_workflow(room, start_delay=2.0)

    # --- Act 2: contention — a second presenter tries to grab it --------
    def second_presenter() -> None:
        try:
            room.smart.projection_sessions.acquire("second-presenter", 20.0)
        except SessionError:
            pass  # the denial itself emits the session issue

    sim.schedule(20.0, second_presenter)

    # --- Act 3: the forgetful exit — sessions left to expire -------------
    # (the client simply never calls release; the 20 s lease sweeps it)
    def forgetful_exit() -> None:
        room.client.stop_vnc_server()  # laptop closes; sessions left behind

    sim.schedule(40.0, forgetful_exit)

    # --- Act 4: animation over the now-free radio, measured --------------
    # The classic mistake first: the viewer starts polling before anyone
    # remembered to start the VNC server on the laptop.
    def animation_trial() -> None:
        fb = room.client.fb
        Animation(sim, fb, fps=15.0, name="anim-trial").start()
        viewer = VNCViewer(sim, room.adapter, room.laptop.name,
                           room.adapter.drive_display, target_fps=15.0,
                           stall_timeout=1.0)
        viewer.start()
        # ...the presenter notices the black screen and starts the server.
        sim.schedule(4.0, room.client.start_vnc_server)

        def assess() -> None:
            achieved = viewer.achieved_fps(16.0)
            if achieved < 0.5 * 15.0:
                sim.issue("bandwidth", "experimenter",
                          f"wireless bandwidth limits animation to "
                          f"{achieved:.1f} fps of 15 offered")
            viewer.stop()

        sim.schedule(20.0, assess)

    sim.schedule(62.0, animation_trial)

    # --- Act 5: interference burst ---------------------------------------
    # Two low-power gadget pairs at opposite corners: below each other's
    # carrier-sense threshold (hidden terminals) but both audible at the
    # centre of the room — the small-cell 2.4 GHz mess the paper worries
    # about, which CSMA cannot coordinate away.
    def interference_burst() -> None:
        from ..phys.devices import Device

        before = room.medium.total_decode_failures
        corners = [((1.0, 1.0), (18.0, 12.0)),
                   ((39.0, 24.0), (22.0, 13.0))]
        # Slightly incommensurate periods so the two hidden senders drift
        # through each other's airtime instead of phase-locking apart.
        periods = (0.025, 0.0257)
        for i, (src_pos, dst_pos) in enumerate(corners):
            sender = Device(sim, room.world, f"gadget-s{i}", src_pos,
                            medium=room.medium, tx_power_dbm=0.0)
            receiver = Device(sim, room.world, f"gadget-r{i}", dst_pos,
                              medium=room.medium, tx_power_dbm=0.0)
            sim.every(periods[i], lambda s=sender, r=receiver: s.nic.send(
                r.name, None, 1200), start=0.01 + 0.003 * i)

        def assess() -> None:
            failures = room.medium.total_decode_failures - before
            if failures > 0:
                sim.issue("interference", "experimenter",
                          f"high concentration of 2.4 GHz devices caused "
                          f"{failures} decode failures in 20 s",
                          failures=failures)

        sim.schedule(20.0, assess)

    sim.schedule(85.0, interference_burst)

    # --- Act 6: infrastructure fault, casual user on duty ---------------
    injector = FaultInjector(sim)

    def registry_outage() -> None:
        fault = injector.kill_registry(room.registry)
        human_repair_model(fault, injector, sim,
                           technical_skill=casual_user().technical_skill)

    sim.schedule(110.0, registry_outage)

    # --- Act 7: users attempt the 8-step procedure ----------------------
    # A casual user (likely to abandon) and a couple of hurried lab
    # researchers (finish, but skip the optional-feeling steps — the
    # forgotten VNC server / forgotten release).
    def user_attempts() -> None:
        from ..resource.faculties import researcher

        procedure_steps = ("discover", "acquire_projection",
                           "acquire_control", "start_vnc_server",
                           "power_on", "start_projection",
                           "stop_projection", "release_all")

        def build_procedure(tag: str) -> Procedure:
            return Procedure(f"smart-projector-{tag}",
                             [Step(name, lambda: None, think_time=1.0,
                                   optional_feeling=(name in
                                                     ("start_vnc_server",
                                                      "release_all")))
                              for name in procedure_steps])

        casual_agent = UserAgent(sim, "casual-1", casual_user(),
                                 intuitiveness=0.3,
                                 consistent_metaphors=False)
        casual_agent.attempt(build_procedure("casual"))
        for i in range(3):
            lab_agent = UserAgent(sim, f"presenter-{i}", researcher(),
                                  intuitiveness=0.3,
                                  consistent_metaphors=False)
            lab_agent.attempt(build_procedure(f"lab{i}"))

    sim.schedule(130.0, user_attempts)

    # --- Act 8: static checks a design review would run ------------------
    def design_review() -> None:
        # Physical tether of the laptop-bound control.
        tether = tether_constraint(laptop_form())
        if tether:
            sim.issue("physical", "reviewer",
                      f"{tether}: controlling constrains the presenter to "
                      "its proximity")
        # Resource-layer frustrations for a non-anglophone visitor.
        report = match(room.adapter.platform, international_visitor())
        for frustration in report.frustrations:
            topic = _FRUSTRATION_TOPICS.get(frustration.aspect, "resource")
            sim.issue(topic, "reviewer", frustration.description)
        # The runtime assumption on the laptop.
        sim.issue("resource", "reviewer",
                  "projection assumes Java and a VNC runtime is present on "
                  "the user's laptop")
        # The GUI-literacy assumption baked into the laptop clients.
        if room.laptop.platform.ui.kind == "gui":
            sim.issue("faculty", "reviewer",
                      "clients assume users understand graphical user "
                      "interfaces (GUI literacy)")
        # Intentional-layer honesty.
        verdict = harmony(research_prototype_purpose(), presentation_goal(),
                          casual_user())
        if not verdict.in_harmony:
            sim.issue("intentional", "reviewer",
                      "research-oriented design purpose is not in harmony "
                      "with casual presenter goals expecting a commercial "
                      "product")
        # Voice-control forward look (physical layer).
        sim.issue("physical", "reviewer",
                  "future voice control would depend on user speech level "
                  "and clarity (human physical characteristics)")

    sim.schedule(150.0, design_review)

    # --- Act 9: voice trial in a noisy room ------------------------------
    def voice_trial() -> None:
        field = AcousticField(room.world, floor_db=38.0)
        field.add_source(NoiseSource("chatter",
                                     TYPICAL_LEVELS_DB["conversation"],
                                     social=True), (28.5, 17.5))
        world_entity = room.adapter.name
        body = sample_physical_profile(sim.rng("e9.body"), "presenter")
        recognizer = SpeechRecognizer(sim)
        snr = field.speech_snr_db(body.speech_level_db, world_entity)
        user = PhysicalUser(sim, body)
        words = ["projector", "on"] * 40
        recognizer.recognize(user.speak(words), snr)
        if recognizer.measured_wer > 0.15:
            sim.issue("noise", "experimenter",
                      f"background noise pushes voice recognition word "
                      f"error to {recognizer.measured_wer:.0%}")
        # The converse venue: a quiet cramped office (the hub's corner,
        # floor noise only) where speaking commands would dominate the
        # soundscape.
        if not field.socially_appropriate(room.hub.name,
                                          body.speech_level_db):
            sim.issue("social", "experimenter",
                      "speaking commands here would be socially "
                      "inappropriate (quiet cramped office)")

    sim.schedule(170.0, voice_trial)

    # --- Act 10: the UI-state mirror (desktop icons) ---------------------
    from ..discovery.events import EXPIRED
    from ..discovery.records import ServiceTemplate

    def icon_watch(loc) -> None:
        def on_event(event) -> None:
            if event.kind == EXPIRED:
                sim.issue("application", "laptop-ui",
                          f"desktop icon state stale: service "
                          f"{event.item.service_type} no longer available")

        room.laptop_discovery.subscribe(ServiceTemplate(), on_event,
                                        lease_duration=120.0)

    room.laptop_discovery.discover(icon_watch)

    sim.run(until=horizon)
    return room, model, instrument


@experiment("E9")
def run(seed: int = 42, horizon: float = 240.0) -> ExperimentResult:
    """Coverage of the paper's issue inventory by observed issues."""
    room, model, instrument = _scripted_week(seed, horizon)
    full = compare_with_paper(model.concerns(), include_user_column=True)
    ablated = compare_with_paper(model.concerns(), include_user_column=False)

    result = ExperimentResult(
        "E9", "observed-issue coverage of the paper's inventory",
        ["model_variant", "coverage", "covered", "total",
         "observed_concerns"])
    result.add_row(model_variant="full LPC (user in every layer)",
                   coverage=full.coverage,
                   covered=sum(i.covered for i in full.items),
                   total=len(full.items),
                   observed_concerns=len(model.concerns()))
    result.add_row(model_variant="device-only (user column removed)",
                   coverage=ablated.coverage,
                   covered=sum(i.covered for i in ablated.items),
                   total=len(ablated.items),
                   observed_concerns=len(model.concerns()))
    for layer, (covered, total) in full.coverage_by_layer().items():
        result.notes.append(f"full model, {layer.title}: {covered}/{total}")
    return result


@experiment("E9-report")
def run_report(seed: int = 42, horizon: float = 240.0) -> ExperimentResult:
    """Per-layer concern counts from the scripted run (the paper's
    analysis section as a table)."""
    room, model, instrument = _scripted_week(seed, horizon)
    counts = model.concern_counts()
    result = ExperimentResult(
        "E9-report", "observed concerns per LPC layer",
        ["layer", "concerns"])
    for layer, count in sorted(counts.items(), key=lambda kv: -kv[0]):
        result.add_row(layer=layer.title, concerns=count)
    return result
