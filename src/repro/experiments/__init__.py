"""Experiment harness and the E1–E9 / F1–F5 reproduction targets.

Importing this package registers every experiment; run one with
``run_experiment("E1")`` or enumerate them with ``list_experiments()``.
"""

from .cache import RunCache, cache_key, source_digest
from .harness import (
    ExperimentResult,
    experiment,
    get_experiment,
    list_experiments,
    run_experiment,
)
from .report import build_report, run_all
from .sweeps import averaged_over_seeds, grid, shutdown_shared_pool, sweep
from .workloads import (
    InterfererPair,
    Room,
    interferer_field,
    presentation_workflow,
    projector_room,
)

# Importing the modules registers their experiments.
from . import cellgrid  # noqa: F401
from . import e1_vnc  # noqa: F401
from . import e2_interference  # noqa: F401
from . import e2_scale  # noqa: F401
from . import e3_ranging  # noqa: F401
from . import e4_discovery  # noqa: F401
from . import e5_burden  # noqa: F401
from . import e6_faculties  # noqa: F401
from . import e7_harmony  # noqa: F401
from . import e8_voice  # noqa: F401
from . import e9_analysis  # noqa: F401
from . import e10_energy  # noqa: F401
from . import figures  # noqa: F401

__all__ = [
    "ExperimentResult",
    "InterfererPair",
    "Room",
    "RunCache",
    "averaged_over_seeds",
    "build_report",
    "cache_key",
    "experiment",
    "get_experiment",
    "grid",
    "interferer_field",
    "list_experiments",
    "presentation_workflow",
    "projector_room",
    "run_all",
    "run_experiment",
    "shutdown_shared_pool",
    "source_digest",
    "sweep",
]
