"""Multi-cell radio workloads for the sharded simulator.

A row of dense broadcast "rooms" spaced kilometres apart — the paper's
physically scoped cells made literal.  The same :class:`CellLayout`
drives two constructions:

* :func:`cell_rooms` — the whole grid in **one** simulator, the culled
  single-process oracle;
* :func:`cell_room_builders` — one builder per shard for
  :class:`~repro.kernel.shard.ShardedSimulator`, each instantiating only
  its own cells.

Byte-identity between the two rests on three legs.  All per-station
randomness (positions, traffic phases) is drawn **up front** from a
standalone :class:`~repro.kernel.random.RandomStreams`, so a shard can
instantiate its subset without consuming anyone else's draws.  The
medium runs with ``per_station_rng`` (delivery/fading outcomes depend
only on each receiver's own history) and ``interference_radius_m``
(transmissions further apart than the radius provably never interact).
And the partition (:func:`repro.env.partition.partition_world`) is
computed at that same radius, so interference-closed components never
span shards.

:func:`coupled_cell_builders` adds deliberate boundary traffic — a
bridged wired link relaying markers between neighbouring shards and
discovery/lease round-trips to a remote registry on shard 0 — the
configuration that actually exercises conservative synchronisation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..discovery.registry import LookupService
from ..discovery.records import ServiceItem, ServiceProxy, ServiceTemplate
from ..discovery.remote import RegistryBridge
from ..env.partition import PartitionPlan, partition_world
from ..env.radio import PropagationModel
from ..env.world import World
from ..kernel.errors import ExperimentError
from ..kernel.random import RandomStreams
from ..kernel.scheduler import Simulator
from ..kernel.shard import ShardContext, ShardProgram
from ..net.addresses import BROADCAST
from ..net.frames import Frame
from ..phys.devices import Device
from ..phys.mac import CsmaMac, WirelessMedium
from ..telemetry.streaming import StreamingAggregator
from ..telemetry.summary import telemetry_summary
from .harness import ExperimentResult, experiment


@dataclass(frozen=True)
class CellLayout:
    """A fully pre-drawn multi-cell workload: pure data, no simulator.

    ``positions[i]``/``offsets[i]`` are global-index-ordered, so any
    subset of stations can be instantiated without touching the draws of
    the rest — the property sharding depends on.
    """

    seed: int
    cells: int
    stations_per_cell: int
    cell_width_m: float
    spacing_m: float
    exponent: float
    sigma_db: float
    tx_power_dbm: float
    channel: int
    frames_per_second: float
    frame_bytes: int
    grid_cell_m: float
    interference_radius_m: float
    width: float
    height: float
    positions: Tuple[Tuple[float, float], ...]
    offsets: Tuple[float, ...]

    @property
    def stations(self) -> int:
        return self.cells * self.stations_per_cell

    @property
    def interval(self) -> float:
        return 1.0 / self.frames_per_second

    def name_of(self, index: int) -> str:
        return f"cg-{index}"

    def index_of(self, name: str) -> int:
        return int(name[3:])

    def room_of(self, index: int) -> int:
        return index // self.stations_per_cell


def cell_layout(cells: int = 4, stations_per_cell: int = 50, *,
                seed: int = 7, cell_width_m: float = 30.0,
                spacing_m: float = 5000.0, exponent: float = 4.0,
                sigma_db: float = 2.0, tx_power_dbm: float = 0.0,
                channel: int = 6, frames_per_second: float = 2.0,
                frame_bytes: int = 66, grid_cell_m: float = 600.0,
                interference_radius_m: Optional[float] = None) -> CellLayout:
    """Draw a ``cells`` x ``stations_per_cell`` grid of dense rooms.

    Rooms are ``cell_width_m`` squares spaced ``spacing_m`` apart along
    x — far enough that no pair of stations in different rooms can ever
    interact at the default interference radius (three room widths).
    ``grid_cell_m`` is pinned (the spatial grid's automatic cell size
    depends on the attached population, which differs per shard).
    """
    if interference_radius_m is None:
        interference_radius_m = 3.0 * cell_width_m
    if spacing_m <= interference_radius_m + 2.0 * cell_width_m:
        raise ValueError(
            f"spacing {spacing_m} does not clear the interference radius "
            f"{interference_radius_m}; rooms would couple")
    streams = RandomStreams(seed)
    placement = streams.stream("cellgrid.placement")
    traffic = streams.stream("cellgrid.traffic")
    interval = 1.0 / frames_per_second
    positions: List[Tuple[float, float]] = []
    offsets: List[float] = []
    for i in range(cells * stations_per_cell):
        x0 = (i // stations_per_cell) * spacing_m
        positions.append((x0 + float(placement.uniform(0, cell_width_m)),
                          float(placement.uniform(0, cell_width_m))))
    for i in range(cells * stations_per_cell):
        offsets.append(float(traffic.uniform(0, interval)))
    return CellLayout(
        seed=seed, cells=cells, stations_per_cell=stations_per_cell,
        cell_width_m=cell_width_m, spacing_m=spacing_m, exponent=exponent,
        sigma_db=sigma_db, tx_power_dbm=tx_power_dbm, channel=channel,
        frames_per_second=frames_per_second, frame_bytes=frame_bytes,
        grid_cell_m=grid_cell_m,
        interference_radius_m=float(interference_radius_m),
        width=(cells - 1) * spacing_m + cell_width_m + 1.0,
        height=cell_width_m + 1.0,
        positions=tuple(positions), offsets=tuple(offsets))


@dataclass
class CellRooms:
    """One assembled (sub)grid: a simulator plus its stations and log."""

    sim: Simulator
    world: World
    medium: WirelessMedium
    macs: List[CsmaMac]
    deliveries: List[Tuple[float, str, str]]
    aggregator: StreamingAggregator
    indices: List[int] = field(default_factory=list)


def _assemble(sim: Simulator, layout: CellLayout,
              indices: Sequence[int]) -> CellRooms:
    """Instantiate ``indices`` (global order) of ``layout`` on ``sim``.

    The world always spans the *full* grid extent and the spatial-grid
    cell size is pinned, so oracle and shard geometry agree exactly.
    """
    aggregator = StreamingAggregator()
    aggregator.attach(sim)
    world = World(layout.width, layout.height)
    propagation = PropagationModel(exponent=layout.exponent,
                                   shadowing_sigma_db=layout.sigma_db,
                                   rng=sim.rng("radio.shadowing"))
    medium = WirelessMedium(
        sim, world, propagation=propagation, culling=True,
        grid_cell_m=layout.grid_cell_m, per_station_rng=True,
        interference_radius_m=layout.interference_radius_m)
    deliveries: List[Tuple[float, str, str]] = []
    macs: List[CsmaMac] = []
    for i in indices:
        name = layout.name_of(i)
        world.place(name, layout.positions[i])
        mac = CsmaMac(sim, medium, name, channel=layout.channel,
                      tx_power_dbm=layout.tx_power_dbm)
        mac.on_receive = (lambda frame, rx=name:
                          deliveries.append((sim.now, frame.src, rx)))
        macs.append(mac)
    frame_bytes = layout.frame_bytes
    for i, mac in zip(indices, macs):
        sim.every(layout.interval,
                  lambda m=mac: m.send(Frame(m.address, BROADCAST,
                                             payload_bytes=frame_bytes)),
                  start=layout.offsets[i])
    return CellRooms(sim, world, medium, macs, deliveries, aggregator,
                     indices=list(indices))


def cell_rooms(layout: CellLayout, *, trace: bool = False,
               batching: bool = True) -> CellRooms:
    """The whole grid in one simulator — the single-process oracle."""
    sim = Simulator(seed=layout.seed, trace=trace, batching=batching)
    return _assemble(sim, layout, range(layout.stations))


def plan_shards(layout: CellLayout, shards: int) -> PartitionPlan:
    """Partition the layout's world at the *interference* radius.

    Components are closed under "could ever interact", so any packing of
    them onto shards preserves physics exactly.
    """
    world = World(layout.width, layout.height)
    for i in range(layout.stations):
        world.place(layout.name_of(i), layout.positions[i])
    return partition_world(world, layout.interference_radius_m,
                           shards=shards)


def deliveries_by_room(layout: CellLayout,
                       deliveries: Sequence[Tuple[float, str, str]],
                       ) -> Dict[int, List[Tuple[float, str, str]]]:
    """Group a delivery log by receiving room, order preserved.

    Room-relative order is the invariant sharding maintains; the global
    interleaving of *different* rooms' same-time deliveries is an engine
    artefact with no observable meaning.
    """
    out: Dict[int, List[Tuple[float, str, str]]] = {}
    for entry in deliveries:
        out.setdefault(layout.room_of(layout.index_of(entry[2])),
                       []).append(entry)
    return out


def _finalize(rooms: CellRooms) -> List[Tuple[float, str, str]]:
    return rooms.deliveries


def cell_room_builders(layout: CellLayout, shards: int,
                       ) -> List[Callable[[ShardContext], ShardProgram]]:
    """One shard builder per shard: disjoint cells, no boundary traffic."""
    plan = plan_shards(layout, shards)

    def make(shard_id: int) -> Callable[[ShardContext], ShardProgram]:
        indices = [layout.index_of(name)
                   for name in plan.stations_of_shard(shard_id)]

        def builder(ctx: ShardContext) -> ShardProgram:
            sim = Simulator(seed=layout.seed, trace=False)
            rooms = _assemble(sim, layout, indices)
            return ShardProgram(
                sim,
                finalize=lambda _s, r=rooms: _finalize(r),
                summarize=lambda s, r=rooms: telemetry_summary(
                    s, stream=r.aggregator))

        return builder

    return [make(s) for s in range(shards)]


# ---------------------------------------------------------------------------
# Boundary-coupled configuration: bridged link + remote registry
# ---------------------------------------------------------------------------

def coupled_cell_builders(layout: CellLayout, shards: int, *,
                          bridge_period: float = 0.05,
                          registry_lease_s: float = 5.0,
                          lookup_period: float = 0.25,
                          ) -> List[Callable[[ShardContext], ShardProgram]]:
    """Cell rooms plus cross-shard coupling.

    Two boundary flows ride the shard pipes:

    * a **bridged wired link**: every ``bridge_period`` each shard relays
      a marker to its right-hand neighbour (ring order); the receiving
      shard's gateway station broadcasts the marker into its own cell, so
      boundary events re-enter the radio rather than dead-ending;
    * **remote discovery**: shard 0 hosts the `LookupService`; every
      other shard registers one service through a
      :class:`~repro.discovery.remote.RegistryBridge` and then polls
      lookups on a timer, exercising register/lease/lookup round-trips.

    Results are ``(deliveries, bridge_log)`` per shard.  This
    configuration has no single-process oracle (the lookahead delay *is*
    the model); it is gated multiprocess-vs-inline instead.
    """
    plan = plan_shards(layout, shards)

    def make(shard_id: int) -> Callable[[ShardContext], ShardProgram]:
        indices = [layout.index_of(name)
                   for name in plan.stations_of_shard(shard_id)]

        def builder(ctx: ShardContext) -> ShardProgram:
            sim = Simulator(seed=layout.seed, trace=False)
            rooms = _assemble(sim, layout, indices)
            ports = ctx.ports
            n = ctx.shard_count
            bridge_log: List[Tuple[float, int, int]] = []
            gateway = rooms.macs[0] if rooms.macs else None

            def on_bridge(src: int, marker: int) -> None:
                bridge_log.append((sim.now, src, marker))
                if gateway is not None:
                    gateway.send(Frame(gateway.address, BROADCAST,
                                       payload_bytes=layout.frame_bytes))

            ports.open("bridge", on_bridge)
            if n > 1:
                counter = {"k": 0}

                def relay() -> None:
                    counter["k"] += 1
                    ports.send("bridge", dst=(ctx.shard_id + 1) % n,
                               payload=counter["k"])

                sim.every(bridge_period, relay,
                          start=bridge_period * (0.5 + ctx.shard_id) / n)

            # Remote registry: shard 0 is home, the rest are clients.
            if ctx.shard_id == 0:
                hub_world = World(layout.cell_width_m, layout.cell_width_m)
                hub_medium = WirelessMedium(
                    sim, hub_world,
                    propagation=PropagationModel(
                        exponent=layout.exponent,
                        shadowing_sigma_db=layout.sigma_db,
                        rng=sim.rng("radio.hub.shadowing")),
                    per_station_rng=True)
                hub = Device(sim, hub_world, "cg-hub",
                             (layout.cell_width_m / 2,
                              layout.cell_width_m / 2),
                             medium=hub_medium, channel=layout.channel)
                registry = LookupService(sim, hub, "cg-registry")
                RegistryBridge(ports, registry=registry)
            elif n > 1:
                bridge = RegistryBridge(ports, home_shard=0)
                item = ServiceItem(
                    service_id=f"cg-svc-{ctx.shard_id}",
                    service_type="cell-sensor",
                    proxy=ServiceProxy(provider=f"cg-shard-{ctx.shard_id}",
                                       port=9000 + ctx.shard_id,
                                       protocol="telemetry"),
                    attributes={"shard": ctx.shard_id})

                def register() -> None:
                    bridge.register(item, registry_lease_s)

                def poll() -> None:
                    bridge.lookup(ServiceTemplate(service_type="cell-sensor"))

                sim.schedule(lookup_period / 2, register)
                sim.every(lookup_period, poll, start=lookup_period)

            return ShardProgram(
                sim,
                finalize=lambda _s, r=rooms, b=bridge_log: (r.deliveries, b),
                summarize=lambda s, r=rooms: telemetry_summary(
                    s, stream=r.aggregator))

        return builder

    return [make(s) for s in range(shards)]


# ---------------------------------------------------------------------------
# E11 — the sharded multi-cell experiment (``repro run E11 --shards N``)
# ---------------------------------------------------------------------------

@experiment("E11")
def e11_sharded_cells(seed: int = 7, shards: int = 1, cells: int = 4,
                      stations_per_cell: int = 25,
                      horizon: float = 2.0) -> ExperimentResult:
    """Disjoint cell grid, single-process or sharded — same table either way.

    With ``shards == 1`` the grid runs in one culled simulator; with more
    it runs under :class:`~repro.kernel.shard.ShardedSimulator` (one
    forked worker per shard where the platform allows).  The per-room
    delivery counts are byte-identical across every value of ``shards``
    — partitioned execution is an engine choice, not a model change.
    """
    from ..kernel.shard import ShardedSimulator, merge_summaries

    if not 1 <= shards <= cells:
        raise ExperimentError(
            f"shards must be in 1..{cells} (one cell is the smallest "
            f"interference-closed unit), got {shards!r}")
    layout = cell_layout(cells=cells, stations_per_cell=stations_per_cell,
                         seed=seed)
    if shards == 1:
        rooms = cell_rooms(layout)
        rooms.sim.run(until=horizon)
        deliveries = rooms.deliveries
        summary = merge_summaries(
            [telemetry_summary(rooms.sim, stream=rooms.aggregator)])
        meta = {"mode": "single-process", "shards": 1,
                "events": rooms.sim.events_executed}
    else:
        engine = ShardedSimulator(cell_room_builders(layout, shards),
                                  lookahead=layout.interval / 4.0)
        engine.run(until=horizon)
        deliveries = [entry for rows in engine.results for entry in rows]
        summary = engine.telemetry()
        meta = dict(engine.stats)
        meta["events"] = engine.events_executed
    by_room = deliveries_by_room(layout, deliveries)
    result = ExperimentResult(
        "E11", "sharded multi-cell broadcast grid",
        ["room", "stations", "deliveries", "senders"])
    for room in range(layout.cells):
        rows = by_room.get(room, [])
        result.add_row(room=room, stations=layout.stations_per_cell,
                       deliveries=len(rows),
                       senders=len({src for _, src, _ in rows}))
    result.notes.append(
        f"{meta.get('mode')} x{meta.get('shards')} over {horizon:g}s, "
        f"{meta['events']} events; per-room rows are byte-identical for "
        f"every shard count")
    result.telemetry.append(summary)
    result.meta.update(meta)
    return result
