"""E10-energy — battery life of an information appliance vs radio duty.

The paper's premise is a $10 SOC with a pico-cellular transceiver in
battery-powered information appliances.  Whether that device lives hours
or weeks depends on how chatty its middleware is: every discovery beacon
and lease renewal costs transmit energy, and an always-on receiver costs
idle power.  This experiment sweeps the beacon period of a badge-class
device and reports projected battery life, with and without a sleepy
(duty-cycled) receiver — the design trade the middleware imposes on the
physical layer.
"""

from __future__ import annotations

from typing import Sequence

from ..phys.devices import Device
from ..phys.power import Battery, DEFAULT_DRAW_W
from .harness import ExperimentResult, experiment
from .workloads import projector_room

#: A badge-class primary cell, joules (~2 AA lithium).
BADGE_BATTERY_J = 18_000.0
BEACON_BYTES = 96


@experiment("E10-energy")
def run(beacon_periods_s: Sequence[float] = (0.1, 1.0, 10.0, 60.0),
        duty_cycles: Sequence[float] = (1.0, 0.05),
        seed: int = 23, measure_s: float = 120.0) -> ExperimentResult:
    """Projected badge battery life vs beacon period and receive duty."""
    result = ExperimentResult(
        "E10-energy", "badge battery life vs middleware chattiness",
        ["beacon_period_s", "rx_duty", "avg_power_w", "battery_life_h"])
    for duty in duty_cycles:
        for period in beacon_periods_s:
            room = projector_room(seed=seed, trace=False, register=False)
            sim = room.sim
            badge = Device(sim, room.world, "badge", (15.0, 12.0),
                           medium=room.medium,
                           battery=Battery(sim, BADGE_BATTERY_J, "badge"))
            sim.every(period, lambda b=badge: b.nic.broadcast(
                None, BEACON_BYTES), start=period)
            sim.run(until=measure_s)

            tx_energy = badge.nic.energy.energy_j["tx"]
            tx_time = badge.nic.mac.stats["busy_time"]
            # The receiver idles whenever not transmitting; a duty-cycled
            # design sleeps the remainder of each cycle.
            idle_time = max(0.0, measure_s - tx_time)
            idle_energy = idle_time * (duty * DEFAULT_DRAW_W["idle"]
                                       + (1 - duty) * DEFAULT_DRAW_W["sleep"])
            avg_power = (tx_energy + idle_energy) / measure_s
            life_h = BADGE_BATTERY_J / avg_power / 3600.0
            result.add_row(beacon_period_s=period, rx_duty=duty,
                           avg_power_w=avg_power, battery_life_h=life_h)
    result.notes.append(
        "with an always-on receiver the beacon period barely matters — "
        "idle listening dominates; duty-cycling the receiver is what buys "
        "battery life, and only then does beacon chattiness show")
    return result
