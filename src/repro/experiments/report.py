"""One-shot reproduction report: run every target, emit one document.

``build_report()`` runs all registered experiments (scaled by a *budget*
knob so smoke runs finish in a couple of minutes) and renders a single
markdown-ish document — the regenerated evaluation section of the paper.
Exposed on the CLI as ``python -m repro report``.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

from ..kernel.errors import ExperimentError
from .harness import ExperimentResult, list_experiments, run_experiment

#: Per-experiment keyword overrides for the quick budget.
_QUICK_OVERRIDES: Dict[str, dict] = {
    "E1": {"duration": 20.0},
    "E1-ablation": {"duration": 15.0},
    "E1-replicated": {"seeds": (1, 2), "duration": 15.0},
    "E2": {"densities": (0, 4, 16), "duration": 8.0},
    "E2-scale": {"service_counts": (4, 32)},
    "E2-autochannel": {"pairs": 20, "duration": 16.0},
    "E3": {"distances": (10.0, 80.0, 120.0, 160.0), "duration": 4.0},
    "E3-mobility": {"duration": 60.0},
    "E4-discovery": {"repeats": 2},
    "E4-stale": {"lease_durations": (10.0, 30.0), "admin_after_s": 120.0,
                 "horizon": 200.0},
    "E4-proxy": {"code_sizes": (1024, 32768)},
    "E4-orders": {"repeats": 8},
    "E8-auth": {"genuine_trials": 100, "impostor_trials": 100},
    "E5": {"burdens": (2, 6, 10), "users_per_cell": 20},
    "E5-training": {"sessions": 4, "users_per_cell": 20},
    "E5-prototype": {"users_per_cell": 30},
    "E6": {"population_size": 40},
    "E6-recovery": {"horizon": 100.0},
    "E6-accessibility": {"population_size": 40},
    "E7": {"population_size": 40},
    "E8": {"speakers": 6, "words_per_speaker": 20},
    "E9": {"horizon": 240.0},
    "E9-report": {"horizon": 240.0},
    "E10-energy": {"measure_s": 60.0},
}


def run_all(budget: str = "quick",
            only: Optional[Sequence[str]] = None) -> List[ExperimentResult]:
    """Run every (or the selected) experiment; returns results in id order.

    Args:
        budget: ``"quick"`` applies the scaled-down overrides; ``"full"``
            runs library defaults.
        only: optional subset of experiment ids.
    """
    if budget not in ("quick", "full"):
        raise ExperimentError(f"unknown budget {budget!r}")
    ids = list(only) if only else list_experiments()
    results = []
    for experiment_id in ids:
        kwargs = _QUICK_OVERRIDES.get(experiment_id, {}) \
            if budget == "quick" else {}
        results.append(run_experiment(experiment_id, **kwargs))
    return results


def build_report(budget: str = "quick",
                 only: Optional[Sequence[str]] = None) -> str:
    """Run everything and render the combined reproduction report."""
    started = time.perf_counter()
    results = run_all(budget, only)
    elapsed = time.perf_counter() - started
    lines = [
        "# Reproduction report — A Conceptual Model for Pervasive Computing",
        "",
        f"budget: {budget}; experiments: {len(results)}; "
        f"wall time: {elapsed:.1f}s",
        "",
    ]
    for result in results:
        lines.append(result.format_table())
        lines.append("")
    return "\n".join(lines)
