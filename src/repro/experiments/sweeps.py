"""Parameter sweeps: common random numbers, incremental caching, one pool.

Comparing simulated systems fairly means varying only what you mean to
vary; the kernel's named RNG streams give that per-component, and this
module gives it per-*configuration*: :func:`sweep` runs a factory across a
parameter grid with the same seed set, collecting rows into one
:class:`~repro.experiments.harness.ExperimentResult`.

Dispatch core, in order:

1. **Cache lookup** (:mod:`repro.experiments.cache`, opt-in via
   ``cache=True`` / ``REPRO_CACHE=1``): each (point, seed) pair is
   content-addressed by the source digest of ``src/repro``, the
   experiment id, ``run_one``'s identity, the point and the seed.  Hits
   replay byte-identical rows from disk; only misses are computed, so
   editing one axis value recomputes only the new points.
2. **Parallel execution** of the misses: ``workers=N`` fans the pairs
   across a ``fork``-start ``multiprocessing`` pool.  A picklable
   ``run_one`` (module-level function or ``functools.partial``) runs on
   one process-wide *reusable* pool shared by every ``sweep()`` call in
   the session, with an adaptive chunksize (workers snapshot the parent
   interpreter at first fork — see :func:`_shared_pool` — and any
   failure escaping ``pool.map`` discards the pool so the next sweep
   re-forks cleanly); lambdas and closures fall
   back to a dedicated per-sweep pool whose workers inherit ``run_one``
   by fork.  Rows are reassembled in task-submission order either way,
   so the parallel result is *identical* to the serial one.  On
   platforms without ``fork`` the sweep warns once and records
   ``parallel=False`` in ``result.meta`` instead of silently crawling.
"""

from __future__ import annotations

import atexit
import itertools
import multiprocessing
import pickle
import time
import warnings
from multiprocessing.pool import MaybeEncodingError
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..kernel.errors import ExperimentError
from .cache import RunCache, cache_key, resolve_cache, run_one_identity, source_digest
from .harness import ExperimentResult


def grid(**axes: Sequence[Any]) -> List[Dict[str, Any]]:
    """Cartesian product of named axes as a list of kwargs dicts.

    >>> grid(a=[1, 2], b=["x"])
    [{'a': 1, 'b': 'x'}, {'a': 2, 'b': 'x'}]
    """
    if not axes:
        raise ExperimentError("grid needs at least one axis")
    names = list(axes)
    out = []
    for values in itertools.product(*(axes[name] for name in names)):
        out.append(dict(zip(names, values)))
    return out


# ---------------------------------------------------------------------------
# Worker plumbing.
#
# Two parallel paths share one contract (tasks carry their submission
# index; rows come back keyed by it):
#
# * picklable ``run_one`` -> the process-wide shared pool; the function
#   rides inside each task as a by-reference pickle (~a qualname), so one
#   long-lived pool serves many different sweeps without re-forking.
# * unpicklable ``run_one`` (lambda/closure) -> a dedicated pool whose
#   initializer receives it through fork inheritance (nothing about it is
#   pickled); the pool lives for that one sweep.
# ---------------------------------------------------------------------------

_WORKER_RUN_ONE: List[Callable[..., Mapping[str, Any]]] = []


def _init_worker(run_one: Callable[..., Mapping[str, Any]]) -> None:
    _WORKER_RUN_ONE[:] = [run_one]


def _run_chunk(chunk: Tuple[int, List[Tuple[int, int, Dict[str, Any]]]],
               ) -> Tuple[int, List[Tuple[int, Dict[str, Any]]], float]:
    chunk_index, tasks = chunk
    t0 = time.perf_counter()
    rows = [(index, dict(_WORKER_RUN_ONE[0](seed=seed, **point)))
            for index, seed, point in tasks]
    return chunk_index, rows, time.perf_counter() - t0


def _run_pickled_chunk(run_one: Callable[..., Mapping[str, Any]],
                       chunk: Tuple[int, List[Tuple[int, int,
                                                    Dict[str, Any]]]],
                       ) -> Tuple[int, List[Tuple[int, Dict[str, Any]]],
                                  float]:
    chunk_index, tasks = chunk
    t0 = time.perf_counter()
    rows = [(index, dict(run_one(seed=seed, **point)))
            for index, seed, point in tasks]
    return chunk_index, rows, time.perf_counter() - t0


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


#: The process-wide reusable pool: ``(pool, size)`` or None.  Grown (never
#: shrunk) on demand; sized-down requests reuse the bigger pool — the task
#: list, not the pool size, bounds concurrency usefully here.
_SHARED_POOL: Optional[Tuple[Any, int]] = None

_WARNED_NO_FORK = False


def _shared_pool(workers: int):
    """The reusable fork pool, grown to at least ``workers`` processes.

    **Snapshot semantics:** workers are forked when the pool is first
    created and then reused for every later ``sweep()``, so they run
    against a snapshot of the parent interpreter at that moment.
    Parent-side changes made *after* the first parallel sweep — mutated
    module globals, monkeypatching, reconfigured defaults a ``run_one``
    reads — are invisible to the workers.  ``run_one`` must be a pure
    function of ``(seed, **point)`` (the determinism linter enforces
    this for in-repo experiments); tests that monkeypatch state a
    ``run_one`` reads must call :func:`shutdown_shared_pool` first to
    force a re-fork.  Any failure escaping ``pool.map`` tears the shared
    pool down (see :func:`_execute_parallel`), so a crashed worker can
    never leave later sweeps running on a broken pool.
    """
    global _SHARED_POOL
    if _SHARED_POOL is not None:
        pool, size = _SHARED_POOL
        if size >= workers:
            return pool
        shutdown_shared_pool()
    ctx = multiprocessing.get_context("fork")
    pool = ctx.Pool(workers)
    _SHARED_POOL = (pool, workers)
    return pool


def shutdown_shared_pool() -> None:
    """Tear down the reusable pool (tests, atexit).  Safe to call twice."""
    global _SHARED_POOL
    if _SHARED_POOL is not None:
        pool, _ = _SHARED_POOL
        _SHARED_POOL = None
        pool.terminate()
        pool.join()


atexit.register(shutdown_shared_pool)


def _adaptive_chunksize(tasks: int, workers: int) -> int:
    """Batch tasks per IPC round trip without losing load balance.

    ``chunksize=1`` maximises balance but pays one pipe round trip per
    task — dominant for grids of sub-second runs.  Aim for ~4 chunks per
    worker (enough slack for wildly uneven points, e.g. 0 vs 32
    interferer pairs) and cap at 32 so one chunk can never hold a
    meaningful fraction of a big grid.
    """
    return max(1, min(32, tasks // (max(1, workers) * 4)))


def _is_picklable(value: Any) -> bool:
    try:
        pickle.dumps(value)
    except Exception:
        return False
    return True


def _execute_parallel(run_one: Callable[..., Mapping[str, Any]],
                      pending: List[Tuple[int, int, Dict[str, Any]]],
                      workers: int,
                      on_row: Callable[[int, Dict[str, Any]], None],
                      ) -> Tuple[Dict[str, int], List[float]]:
    """Fan ``pending`` tasks across processes, streaming rows back.

    Chunks are dispatched explicitly and consumed with
    ``imap_unordered``: ``on_row(index, row)`` fires *as each chunk
    lands*, so cache stores and row assembly overlap with the chunks
    still executing instead of waiting behind the slowest one (the
    completion barrier ``pool.map`` imposes).  Arrival order is
    irrelevant — rows are keyed by task index and reassembled in
    submission order by the caller.

    Returns a ``{"tasks": ..., "rows": ...}`` accounting of the pickled
    bytes that crossed the pool pipe (``meta["bytes_shipped"]``) and the
    per-chunk wall times measured inside the workers, indexed by chunk
    (``meta["chunk_walls"]["per_chunk"]``).  ``run_one`` rides in the
    *mapper* (pickled once per chunk), not in every task tuple.
    """
    import functools

    effective = min(workers, len(pending))
    chunksize = _adaptive_chunksize(len(pending), effective)
    chunks = [(ci, pending[lo:lo + chunksize])
              for ci, lo in enumerate(range(0, len(pending), chunksize))]
    walls = [0.0] * len(chunks)
    row_bytes = 0

    def consume(results) -> None:
        nonlocal row_bytes
        for reply in results:
            row_bytes += len(pickle.dumps(reply))
            chunk_index, rows, wall = reply
            walls[chunk_index] = wall
            for index, row in rows:
                on_row(index, row)

    try:
        if _is_picklable(run_one):
            try:
                task_blob = pickle.dumps(chunks)
            except Exception as exc:
                raise ExperimentError(
                    "sweep point values must be picklable for parallel "
                    f"execution (workers>1): {exc!r}") from exc
            pool = _shared_pool(workers)
            try:
                consume(pool.imap_unordered(
                    functools.partial(_run_pickled_chunk, run_one), chunks))
            except Exception:
                # The failure may have killed workers or desynchronised
                # the result pipe; discard the pool so the next sweep
                # forks a fresh one instead of hanging on a broken one.
                shutdown_shared_pool()
                raise
        else:
            # Fork inheritance: the initializer receives run_one by
            # address space, so closures and lambdas work — at the price
            # of a fresh pool for this one sweep.
            task_blob = pickle.dumps(chunks)
            ctx = multiprocessing.get_context("fork")
            with ctx.Pool(effective, initializer=_init_worker,
                          initargs=(run_one,)) as pool:
                consume(pool.imap_unordered(_run_chunk, chunks))
    except MaybeEncodingError as exc:
        raise ExperimentError(
            "run_one returned a row that cannot cross the process "
            "boundary (not picklable); return plain dicts of scalars "
            f"— {exc!r}") from exc
    shipped = {"tasks": len(task_blob), "rows": row_bytes}
    return shipped, walls


# ---------------------------------------------------------------------------
# The sweep
# ---------------------------------------------------------------------------

def sweep(experiment_id: str, title: str,
          run_one: Callable[..., Mapping[str, Any]],
          points: Iterable[Mapping[str, Any]],
          seeds: Sequence[int] = (0,),
          columns: Sequence[str] = (),
          workers: int = 0,
          cache: Any = None) -> ExperimentResult:
    """Run ``run_one(seed=..., **point)`` over every (point, seed) pair.

    ``run_one`` returns a row dict; the parameter point and seed are merged
    in (point values win on key clashes so callers can rename).  Columns
    default to the union of keys in first-row order.

    Args:
        workers: fan the pairs across this many ``multiprocessing`` workers
            (0 or 1 = serial; negative is rejected).  ``run_one`` must be
            deterministic given its seed; rows come back in the same order
            as the serial path.
        cache: ``True`` / a :class:`~repro.experiments.cache.RunCache` to
            replay previously computed (point, seed) pairs from the
            content-addressed on-disk cache; ``False`` forces it off; the
            default ``None`` defers to ``REPRO_CACHE`` / ``REPRO_NO_CACHE``.

    The result's ``meta`` dict records how the sweep actually ran:
    ``workers`` (requested), ``parallel`` (whether a pool was used),
    ``computed`` / ``cached`` task counts, a ``bytes_shipped`` account
    of pickled pipe traffic (``{"tasks", "rows"}``) when a pool was
    used, a ``chunk_walls`` dict when a pool was used (``per_chunk``:
    in-worker wall seconds per chunk; ``assemble_overlap_s``: table
    assembly seconds folded into chunk arrival instead of a
    post-barrier pass), and a per-sweep ``cache`` stats delta when
    caching was on.
    """
    if not isinstance(workers, int) or isinstance(workers, bool):
        raise ExperimentError(f"workers must be an int, not {workers!r}")
    if workers < 0:
        raise ExperimentError(
            f"workers must be >= 0, not {workers} (0 or 1 = serial)")
    tasks: List[Tuple[int, int, Dict[str, Any]]] = []
    for point in points:
        for seed in seeds:
            tasks.append((len(tasks), seed, dict(point)))
    if not tasks:
        raise ExperimentError("sweep produced no rows")

    # ---- phase 1: cache lookup ---------------------------------------
    run_cache = resolve_cache(cache)
    stats_before = run_cache.stats.snapshot() if run_cache else None
    keys: Dict[int, str] = {}
    replayed: Dict[int, Tuple[Dict[str, Any], Any]] = {}
    pending: List[Tuple[int, int, Dict[str, Any]]] = []
    if run_cache is not None:
        identity = run_one_identity(run_one)
        if identity is None:
            run_cache.stats.uncacheable.add(len(tasks))
            pending = tasks
        else:
            src = source_digest()
            for index, seed, point in tasks:
                try:
                    key = cache_key(experiment_id, identity, point, seed,
                                    src_digest=src)
                except ExperimentError:
                    run_cache.stats.uncacheable.add()
                    pending.append((index, seed, point))
                    continue
                keys[index] = key
                entry = run_cache.get(key)
                if entry is None:
                    pending.append((index, seed, point))
                else:
                    replayed[index] = (entry["row"], entry.get("telemetry"))
    else:
        pending = tasks

    # ---- phase 2: execute the misses, storing rows as they land ------
    measured_by_index: Dict[int, Tuple[Dict[str, Any], Any]] = dict(replayed)

    assembled: Dict[int, Dict[str, Any]] = {}
    assemble_wall = 0.0

    def store_row(index: int, measured: Dict[str, Any]) -> None:
        # "telemetry" is reserved: a per-run summary dict (small and
        # picklable — it crossed the fork pipe instead of the raw trace).
        # It rides on the result, not in the table.  Called per chunk as
        # results stream in, so cache writes overlap with the chunks
        # still executing.
        nonlocal assemble_wall
        telemetry_entry = measured.pop("telemetry", None)
        measured_by_index[index] = (measured, telemetry_entry)
        if run_cache is not None and index in keys:
            run_cache.put(keys[index], measured, telemetry_entry)
        # Fold the final table row here too: on the parallel path this
        # runs while other chunks are still executing, so the assembly
        # cost (merging point + seed + measured, point keys winning)
        # overlaps the pool instead of queueing behind the slowest
        # chunk.  The accumulated seconds are the wall time phase 3
        # no longer has to spend — reported as
        # ``meta["chunk_walls"]["assemble_overlap_s"]``.
        t0 = time.perf_counter()
        _i, seed, point = tasks[index]
        row: Dict[str, Any] = {"seed": seed}
        row.update(point)
        for key, value in measured.items():
            if key not in row:
                row[key] = value
        assembled[index] = row
        assemble_wall += time.perf_counter() - t0

    global _WARNED_NO_FORK
    parallel = False
    bytes_shipped: Optional[Dict[str, int]] = None
    chunk_walls: Optional[List[float]] = None
    if workers > 1 and len(pending) > 1:
        if _fork_available():
            parallel = True
            bytes_shipped, chunk_walls = _execute_parallel(
                run_one, pending, workers, store_row)
        else:
            if not _WARNED_NO_FORK:
                _WARNED_NO_FORK = True
                warnings.warn(
                    "sweep: the 'fork' start method is unavailable on "
                    "this platform; running serially (workers request "
                    "ignored). This warning is emitted once.",
                    RuntimeWarning, stacklevel=2)
            for index, seed, point in pending:
                store_row(index, dict(run_one(seed=seed, **point)))
    else:
        for index, seed, point in pending:
            store_row(index, dict(run_one(seed=seed, **point)))

    # ---- phase 3: order the pre-assembled rows -----------------------
    # Computed rows were folded into the table inside ``store_row`` as
    # their chunks landed; only cache-replayed rows (which never cross
    # the streaming callback) are assembled here.
    rows: List[Dict[str, Any]] = []
    telemetry: List[Any] = []
    for index, seed, point in tasks:
        measured, telemetry_entry = measured_by_index[index]
        telemetry.append(telemetry_entry)
        row = assembled.get(index)
        if row is None:
            row = {"seed": seed}
            row.update(point)
            for key, value in measured.items():
                if key not in row:
                    row[key] = value
        rows.append(row)
    if not columns:
        columns = list(rows[0].keys())
    result = ExperimentResult(experiment_id, title, list(columns))
    for row in rows:
        result.add_row(**{k: row.get(k) for k in columns})
    if any(entry is not None for entry in telemetry):
        result.telemetry = telemetry
    result.meta.update({
        "workers": workers,
        "parallel": parallel,
        "computed": len(pending),
        "cached": len(replayed),
    })
    if bytes_shipped is not None:
        result.meta["bytes_shipped"] = bytes_shipped
    if chunk_walls is not None:
        result.meta["chunk_walls"] = {
            "per_chunk": chunk_walls,
            "assemble_overlap_s": assemble_wall,
        }
    if run_cache is not None:
        after = run_cache.stats.snapshot()
        delta = {name: after[name] - stats_before[name]
                 for name in sorted(stats_before) if name != "hit_rate"}
        lookups = delta["hits"] + delta["misses"]
        delta["hit_rate"] = delta["hits"] / lookups if lookups else 0.0
        result.meta["cache"] = delta
    return result


def averaged_over_seeds(result: ExperimentResult,
                        group_by: Sequence[str],
                        metrics: Sequence[str]) -> ExperimentResult:
    """Collapse a multi-seed sweep: mean of ``metrics`` per parameter point.

    When the input carries per-row telemetry summaries (``sweep`` attaches
    them for ``run_one``s that return a ``"telemetry"`` key), each output
    row gets an *aggregated* summary — counts summed across the collapsed
    replicates via :func:`repro.telemetry.summary.aggregate_telemetry` —
    so layer/issue reporting keeps working on seed-averaged results.
    """
    from ..telemetry.summary import aggregate_telemetry

    per_row_telemetry = (list(result.telemetry)
                         if len(result.telemetry) == len(result.rows)
                         else [None] * len(result.rows))
    groups: Dict[tuple, List[Dict[str, Any]]] = {}
    group_telemetry: Dict[tuple, List[Any]] = {}
    for row, telemetry_entry in zip(result.rows, per_row_telemetry):
        key = tuple(row.get(name) for name in group_by)
        groups.setdefault(key, []).append(row)
        group_telemetry.setdefault(key, []).append(telemetry_entry)
    out = ExperimentResult(result.experiment_id + "-avg",
                           result.title + " (seed-averaged)",
                           list(group_by) + [f"mean_{m}" for m in metrics]
                           + ["replicates"])
    aggregated: List[Any] = []
    for key, rows in groups.items():
        aggregates: Dict[str, Any] = dict(zip(group_by, key))
        for metric in metrics:
            values = [row[metric] for row in rows if row.get(metric) is not None]
            aggregates[f"mean_{metric}"] = (sum(values) / len(values)
                                            if values else float("nan"))
        aggregates["replicates"] = len(rows)
        out.add_row(**aggregates)
        summaries = [entry for entry in group_telemetry[key]
                     if entry is not None]
        aggregated.append(aggregate_telemetry(summaries) if summaries
                          else None)
    if any(entry is not None for entry in aggregated):
        out.telemetry = aggregated
    return out
