"""Parameter sweeps with common random numbers.

Comparing simulated systems fairly means varying only what you mean to
vary; the kernel's named RNG streams give that per-component, and this
module gives it per-*configuration*: :func:`sweep` runs a factory across a
parameter grid with the same seed set, collecting rows into one
:class:`~repro.experiments.harness.ExperimentResult`.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Iterable, List, Mapping, Sequence

from ..kernel.errors import ExperimentError
from .harness import ExperimentResult


def grid(**axes: Sequence[Any]) -> List[Dict[str, Any]]:
    """Cartesian product of named axes as a list of kwargs dicts.

    >>> grid(a=[1, 2], b=["x"])
    [{'a': 1, 'b': 'x'}, {'a': 2, 'b': 'x'}]
    """
    if not axes:
        raise ExperimentError("grid needs at least one axis")
    names = list(axes)
    out = []
    for values in itertools.product(*(axes[name] for name in names)):
        out.append(dict(zip(names, values)))
    return out


def sweep(experiment_id: str, title: str,
          run_one: Callable[..., Mapping[str, Any]],
          points: Iterable[Mapping[str, Any]],
          seeds: Sequence[int] = (0,),
          columns: Sequence[str] = ()) -> ExperimentResult:
    """Run ``run_one(seed=..., **point)`` over every (point, seed) pair.

    ``run_one`` returns a row dict; the parameter point and seed are merged
    in (point values win on key clashes so callers can rename).  Columns
    default to the union of keys in first-row order.
    """
    rows: List[Dict[str, Any]] = []
    for point in points:
        for seed in seeds:
            measured = dict(run_one(seed=seed, **point))
            row = {"seed": seed, **point, **measured}
            rows.append(row)
    if not rows:
        raise ExperimentError("sweep produced no rows")
    if not columns:
        columns = list(rows[0].keys())
    result = ExperimentResult(experiment_id, title, list(columns))
    for row in rows:
        result.add_row(**{k: row.get(k) for k in columns})
    return result


def averaged_over_seeds(result: ExperimentResult,
                        group_by: Sequence[str],
                        metrics: Sequence[str]) -> ExperimentResult:
    """Collapse a multi-seed sweep: mean of ``metrics`` per parameter
    point."""
    groups: Dict[tuple, List[Dict[str, Any]]] = {}
    for row in result.rows:
        key = tuple(row.get(name) for name in group_by)
        groups.setdefault(key, []).append(row)
    out = ExperimentResult(result.experiment_id + "-avg",
                           result.title + " (seed-averaged)",
                           list(group_by) + [f"mean_{m}" for m in metrics]
                           + ["replicates"])
    for key, rows in groups.items():
        aggregates: Dict[str, Any] = dict(zip(group_by, key))
        for metric in metrics:
            values = [row[metric] for row in rows if row.get(metric) is not None]
            aggregates[f"mean_{metric}"] = (sum(values) / len(values)
                                            if values else float("nan"))
        aggregates["replicates"] = len(rows)
        out.add_row(**aggregates)
    return out
