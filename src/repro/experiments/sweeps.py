"""Parameter sweeps with common random numbers.

Comparing simulated systems fairly means varying only what you mean to
vary; the kernel's named RNG streams give that per-component, and this
module gives it per-*configuration*: :func:`sweep` runs a factory across a
parameter grid with the same seed set, collecting rows into one
:class:`~repro.experiments.harness.ExperimentResult`.

``sweep(..., workers=N)`` fans the (point, seed) pairs across
``multiprocessing`` workers.  Each pair is an independent simulation with
its own seed, so the fan-out is embarrassingly parallel; rows are
reassembled in task-submission order, which makes the parallel result
*identical* to the serial one — same rows, same order.  The pool uses the
``fork`` start method (workers inherit ``run_one`` by address space, so
closures and lambdas work); on platforms without ``fork`` the sweep
silently falls back to the serial path.
"""

from __future__ import annotations

import itertools
import multiprocessing
from typing import Any, Callable, Dict, Iterable, List, Mapping, Sequence, Tuple

from ..kernel.errors import ExperimentError
from .harness import ExperimentResult


def grid(**axes: Sequence[Any]) -> List[Dict[str, Any]]:
    """Cartesian product of named axes as a list of kwargs dicts.

    >>> grid(a=[1, 2], b=["x"])
    [{'a': 1, 'b': 'x'}, {'a': 2, 'b': 'x'}]
    """
    if not axes:
        raise ExperimentError("grid needs at least one axis")
    names = list(axes)
    out = []
    for values in itertools.product(*(axes[name] for name in names)):
        out.append(dict(zip(names, values)))
    return out


# ---------------------------------------------------------------------------
# Worker plumbing.  ``run_one`` reaches the workers by fork inheritance (the
# initializer runs after the fork, so nothing about it is pickled); only the
# (index, seed, point) tasks and the measured row dicts cross the pipe.
# ---------------------------------------------------------------------------

_WORKER_RUN_ONE: List[Callable[..., Mapping[str, Any]]] = []


def _init_worker(run_one: Callable[..., Mapping[str, Any]]) -> None:
    _WORKER_RUN_ONE[:] = [run_one]


def _run_task(task: Tuple[int, int, Dict[str, Any]]) -> Tuple[int, Dict[str, Any]]:
    index, seed, point = task
    return index, dict(_WORKER_RUN_ONE[0](seed=seed, **point))


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def sweep(experiment_id: str, title: str,
          run_one: Callable[..., Mapping[str, Any]],
          points: Iterable[Mapping[str, Any]],
          seeds: Sequence[int] = (0,),
          columns: Sequence[str] = (),
          workers: int = 0) -> ExperimentResult:
    """Run ``run_one(seed=..., **point)`` over every (point, seed) pair.

    ``run_one`` returns a row dict; the parameter point and seed are merged
    in (point values win on key clashes so callers can rename).  Columns
    default to the union of keys in first-row order.

    Args:
        workers: fan the pairs across this many ``multiprocessing`` workers
            (0 or 1 = serial).  ``run_one`` must be deterministic given its
            seed; rows come back in the same order as the serial path.
    """
    tasks: List[Tuple[int, int, Dict[str, Any]]] = []
    for point in points:
        for seed in seeds:
            tasks.append((len(tasks), seed, dict(point)))

    if workers > 1 and len(tasks) > 1 and _fork_available():
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(min(workers, len(tasks)),
                      initializer=_init_worker,
                      initargs=(run_one,)) as pool:
            measured_by_index = dict(pool.map(_run_task, tasks, chunksize=1))
    else:
        measured_by_index = {index: dict(run_one(seed=seed, **point))
                             for index, seed, point in tasks}

    rows: List[Dict[str, Any]] = []
    telemetry: List[Dict[str, Any]] = []
    for index, seed, point in tasks:
        measured = measured_by_index[index]
        # "telemetry" is reserved: a per-run summary dict (small and
        # picklable — it crossed the fork pipe instead of the raw trace).
        # It rides on the result, not in the table.
        telemetry.append(measured.pop("telemetry", None))
        row: Dict[str, Any] = {"seed": seed}
        row.update(point)
        for key, value in measured.items():
            if key not in row:
                row[key] = value
        rows.append(row)
    if not rows:
        raise ExperimentError("sweep produced no rows")
    if not columns:
        columns = list(rows[0].keys())
    result = ExperimentResult(experiment_id, title, list(columns))
    for row in rows:
        result.add_row(**{k: row.get(k) for k in columns})
    if any(entry is not None for entry in telemetry):
        result.telemetry = telemetry
    return result


def averaged_over_seeds(result: ExperimentResult,
                        group_by: Sequence[str],
                        metrics: Sequence[str]) -> ExperimentResult:
    """Collapse a multi-seed sweep: mean of ``metrics`` per parameter
    point."""
    groups: Dict[tuple, List[Dict[str, Any]]] = {}
    for row in result.rows:
        key = tuple(row.get(name) for name in group_by)
        groups.setdefault(key, []).append(row)
    out = ExperimentResult(result.experiment_id + "-avg",
                           result.title + " (seed-averaged)",
                           list(group_by) + [f"mean_{m}" for m in metrics]
                           + ["replicates"])
    for key, rows in groups.items():
        aggregates: Dict[str, Any] = dict(zip(group_by, key))
        for metric in metrics:
            values = [row[metric] for row in rows if row.get(metric) is not None]
            aggregates[f"mean_{metric}"] = (sum(values) / len(values)
                                            if values else float("nan"))
        aggregates["replicates"] = len(rows)
        out.add_row(**aggregates)
    return out
