"""E3 — ranging: throughput vs distance, and mobility.

"We are using wireless networking technologies with ranging, radio
interference and scaling constraints."  Two parts:

* the ranging table: analytic maximum range per 802.11b rate from the
  propagation model, next to *measured* goodput at a sweep of distances;
* a mobility run: a walker on a random-waypoint path, showing rate
  adaptation coping with "a wide variation in its surrounding
  environment" (the ablation pins the rate and watches delivery die at
  range).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..env.mobility import RandomWaypoint
from ..env.radio import RATES, RATE_BY_NAME, PropagationModel
from .harness import ExperimentResult, experiment
from .workloads import projector_room


@experiment("E3-range-table")
def run_range_table(tx_power_dbm: float = 15.0,
                    exponent: float = 3.0) -> ExperimentResult:
    """Analytic interference-free range per PHY rate."""
    result = ExperimentResult(
        "E3-range-table", "maximum range per 802.11b rate (analytic)",
        ["rate", "range_m"])
    propagation = PropagationModel(exponent=exponent, shadowing_sigma_db=0.0)
    for mode in RATES:
        result.add_row(rate=mode.name,
                       range_m=propagation.range_for_rate(
                           mode, tx_power_dbm=tx_power_dbm))
    result.notes.append(f"path-loss exponent {exponent}, no shadowing")
    return result


def _measure_distance(distance: float, seed: int, duration: float,
                      fixed_rate: Optional[str]) -> dict:
    rate = RATE_BY_NAME[fixed_rate] if fixed_rate else None
    room = projector_room(seed=seed, trace=False, register=False,
                          width=500.0, height=20.0,
                          laptop_pos=(1.0, 10.0),
                          adapter_pos=(1.0 + distance, 10.0),
                          hub_pos=(250.0, 10.0),
                          fixed_rate=rate)
    sim = room.sim
    frame_bytes = 1000
    # Offer ~1.6 Mb/s — above what the slower PHY modes can carry, so the
    # ranging curve shows goodput stepping down as rate adaptation falls
    # back, not just a delivery cliff at maximum range.
    sim.every(0.005, lambda: room.laptop.nic.send(room.adapter.name, None,
                                                  frame_bytes), start=0.005)
    sim.run(until=duration)
    stats = room.laptop.nic.stats
    offered = max(1.0, stats["enqueued"])
    return {
        "distance_m": distance,
        "mode": fixed_rate or "adaptive",
        "delivery_ratio": stats["tx_success"] / offered,
        "goodput_kbps": 8.0 * stats["tx_success"] * frame_bytes / duration / 1e3,
    }


@experiment("E3")
def run(distances: Sequence[float] = (2, 5, 10, 20, 40, 80, 120, 160),
        duration: float = 10.0, seed: int = 3,
        modes: Sequence[Optional[str]] = (None, "11Mbps")) -> ExperimentResult:
    """Measured goodput vs distance: adaptive rate vs pinned 11 Mb/s."""
    result = ExperimentResult(
        "E3", "goodput vs distance (rate adaptation ablation)",
        ["distance_m", "mode", "delivery_ratio", "goodput_kbps"])
    for mode in modes:
        for distance in distances:
            result.add_row(**_measure_distance(distance, seed, duration, mode))
    result.notes.append(
        "adaptive rate degrades gracefully with range; pinned 11 Mb/s "
        "collapses once SINR drops below its threshold")
    return result


@experiment("E3-mobility")
def run_mobility(duration: float = 120.0, seed: int = 4) -> ExperimentResult:
    """A walking presenter in a building-sized space: the walker crosses
    in and out of the faster rates' range, so pinned 11 Mb/s suffers
    outages that rate adaptation rides through."""
    result = ExperimentResult(
        "E3-mobility", "walking presenter with random-waypoint mobility",
        ["mode", "delivery_ratio", "legs", "mean_goodput_kbps"])
    for fixed in (None, "11Mbps"):
        rate = RATE_BY_NAME[fixed] if fixed else None
        room = projector_room(seed=seed, trace=False, register=False,
                              width=300.0, height=200.0,
                              laptop_pos=(10.0, 10.0),
                              adapter_pos=(150.0, 100.0),
                              fixed_rate=rate)
        sim = room.sim
        walker = RandomWaypoint(sim, room.world, room.laptop.name,
                                speed_min=4.0, speed_max=8.0, pause=1.0)
        walker.start()
        frame_bytes = 1000
        sim.every(0.05, lambda r=room: r.laptop.nic.send(
            r.adapter.name, None, frame_bytes), start=0.05)
        sim.run(until=duration)
        stats = room.laptop.nic.stats
        offered = max(1.0, stats["enqueued"])
        result.add_row(mode=fixed or "adaptive",
                       delivery_ratio=stats["tx_success"] / offered,
                       legs=walker.legs_completed,
                       mean_goodput_kbps=(8.0 * stats["tx_success"]
                                          * frame_bytes / duration / 1e3))
    return result
