"""Experiment harness: results, tables, and the experiment registry.

Every reproduction target (E1–E10, F1–F5) is a function returning an
:class:`ExperimentResult`; the benchmarks regenerate the paper's
tables/series by printing these, and EXPERIMENTS.md records the measured
shapes.  Results are plain rows so they can be asserted on in tests and
pretty-printed without extra dependencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List

from ..kernel.errors import ExperimentError


@dataclass
class ExperimentResult:
    """One experiment's output table."""

    experiment_id: str
    title: str
    columns: List[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    #: optional per-row telemetry summaries (see repro.telemetry.summary);
    #: populated by sweep() when run_one returns a "telemetry" key.  Kept
    #: out of ``columns``/``rows`` so tables and assertions are unchanged.
    telemetry: List[Dict[str, Any]] = field(default_factory=list)
    #: how the result was produced (sweep() records workers / parallel /
    #: cached-vs-computed task counts and cache stats here).  Like
    #: ``telemetry``, never part of the table.
    meta: Dict[str, Any] = field(default_factory=dict)

    def add_row(self, **values: Any) -> None:
        unknown = set(values) - set(self.columns)
        if unknown:
            raise ExperimentError(f"row has unknown columns {sorted(unknown)}")
        self.rows.append(values)

    def column(self, name: str) -> List[Any]:
        if name not in self.columns:
            raise ExperimentError(f"no column {name!r}")
        return [row.get(name) for row in self.rows]

    def select(self, **criteria: Any) -> List[Dict[str, Any]]:
        """Rows matching all given column=value criteria."""
        out = []
        for row in self.rows:
            if all(row.get(k) == v for k, v in criteria.items()):
                out.append(row)
        return out

    # ------------------------------------------------------------------
    def format_table(self) -> str:
        """Fixed-width table like the ones a paper prints."""
        def fmt(value: Any) -> str:
            if isinstance(value, float):
                return f"{value:.4g}"
            return str(value)

        widths = {c: len(c) for c in self.columns}
        for row in self.rows:
            for c in self.columns:
                widths[c] = max(widths[c], len(fmt(row.get(c, ""))))
        header = " | ".join(c.ljust(widths[c]) for c in self.columns)
        rule = "-+-".join("-" * widths[c] for c in self.columns)
        lines = [f"== {self.experiment_id}: {self.title} ==", header, rule]
        for row in self.rows:
            lines.append(" | ".join(fmt(row.get(c, "")).ljust(widths[c])
                                    for c in self.columns))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.format_table()


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_REGISTRY: Dict[str, Callable[..., ExperimentResult]] = {}


def experiment(experiment_id: str):
    """Decorator registering an experiment function under its id."""

    def wrap(fn: Callable[..., ExperimentResult]):
        if experiment_id in _REGISTRY:
            raise ExperimentError(f"experiment {experiment_id!r} already registered")
        _REGISTRY[experiment_id] = fn
        fn.experiment_id = experiment_id  # type: ignore[attr-defined]
        return fn

    return wrap


def get_experiment(experiment_id: str) -> Callable[..., ExperimentResult]:
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known: {sorted(_REGISTRY)}"
        ) from None


def list_experiments() -> List[str]:
    return sorted(_REGISTRY)


def run_experiment(experiment_id: str, **kwargs: Any) -> ExperimentResult:
    return get_experiment(experiment_id)(**kwargs)
