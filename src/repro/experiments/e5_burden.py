"""E5 — conceptual burden vs task completion.

"Even relatively simple applications can place a conceptual burden on its
users.  If this burden is greater than what users are willing to bear in
meeting their goals, then the system will not be used."

We sweep procedure length (the burden) and run simulated users from the
lab and casual populations through it, comparing against the closed-form
model.  The second table contrasts the paper's *research prototype*
workflow (8 steps) with a *commercial-grade* two-step variant.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..kernel.scheduler import Simulator
from ..user.behavior import Procedure, Step, UserAgent
from ..user.mental import completion_probability
from ..user.population import casual_population, lab_population
from .harness import ExperimentResult, experiment


def _noop() -> None:
    pass


def synthetic_procedure(steps: int) -> Procedure:
    """A content-free procedure of the given burden."""
    return Procedure(f"procedure-{steps}",
                     [Step(f"step-{i + 1}", _noop, think_time=1.0)
                      for i in range(steps)])


@experiment("E5")
def run(burdens: Sequence[int] = (2, 4, 6, 8, 10, 12),
        users_per_cell: int = 40, seed: int = 8) -> ExperimentResult:
    """Completion rate vs burden for lab vs casual populations."""
    result = ExperimentResult(
        "E5", "task completion vs conceptual burden",
        ["population", "burden", "completed", "abandoned", "skipped_rate",
         "predicted_completion", "mean_time_s"])
    for population_name in ("lab", "casual"):
        for burden in burdens:
            sim = Simulator(seed=seed, trace=False)
            rng = sim.rng(f"e5.{population_name}.{burden}")
            users = (lab_population(rng, users_per_cell)
                     if population_name == "lab"
                     else casual_population(rng, users_per_cell))
            agents = []
            predicted = []
            for faculties in users:
                agent = UserAgent(sim, faculties.name, faculties)
                agent.attempt(synthetic_procedure(burden))
                agents.append(agent)
                predicted.append(completion_probability(burden, faculties))
            sim.run(until=3600.0)
            results = [a.results[0] for a in agents if a.results]
            completed = sum(r.completed for r in results)
            abandoned = sum(r.abandoned for r in results)
            skipped = sum(len(r.skipped_steps) for r in results)
            times = [r.elapsed for r in results if r.completed]
            result.add_row(
                population=population_name, burden=burden,
                completed=completed / max(1, len(results)),
                abandoned=abandoned / max(1, len(results)),
                skipped_rate=skipped / max(1, len(results) * burden),
                predicted_completion=float(np.mean(predicted)),
                mean_time_s=float(np.mean(times)) if times else float("nan"))
    result.notes.append(
        "completion collapses beyond each population's concept capacity; "
        "casual users collapse several steps earlier than researchers")
    return result


@experiment("E5-training")
def run_training(sessions: int = 8, users_per_cell: int = 40,
                 burden: int = 6, seed: int = 21) -> ExperimentResult:
    """The paper's claim that faculties, "through training and practice,
    can be acquired in a reasonable amount of time": casual users repeat
    the 8-step prototype workflow, training domain knowledge and GUI
    literacy after each session; completion climbs toward the lab rate."""
    from repro.resource.faculties import train

    result = ExperimentResult(
        "E5-training", "casual users learning the prototype workflow",
        ["session", "completed", "mean_domain_knowledge"])
    sim = Simulator(seed=seed, trace=False)
    rng = sim.rng("e5t")
    users = casual_population(rng, users_per_cell)
    for session in range(1, sessions + 1):
        agents = []
        for faculties in users:
            agent = UserAgent(sim, f"{faculties.name}-s{session}", faculties,
                              intuitiveness=0.3)
            agent.attempt(synthetic_procedure(burden))
            agents.append(agent)
        sim.run(until=sim.now + 3600.0)
        results = [a.results[0] for a in agents if a.results]
        completed = sum(r.completed for r in results) / max(1, len(results))
        result.add_row(
            session=session, completed=completed,
            mean_domain_knowledge=float(np.mean(
                [u.domain_knowledge for u in users])))
        # Practice: every attempt trains the relevant faculties.
        users = [train(train(u, "domain_knowledge"), "gui_literacy")
                 for u in users]
    result.notes.append(
        "completion climbs with early practice as trainable faculties "
        "develop, then plateaus: temperament (frustration tolerance) is "
        "not trainable, so abandonment persists — only lowering the "
        "burden fixes the rest")
    return result


@experiment("E5-prototype")
def run_prototype_vs_product(users_per_cell: int = 60,
                             seed: int = 9) -> ExperimentResult:
    """The paper's own contrast: research prototype (8 manual steps, low
    intuitiveness) vs commercial-grade product (2 steps, high
    intuitiveness), casual users."""
    result = ExperimentResult(
        "E5-prototype", "research prototype vs commercial-grade workflow",
        ["variant", "burden", "completed", "abandoned"])
    variants = (("research-prototype", 8, 0.3, False),
                ("commercial-product", 2, 0.9, True))
    for name, burden, intuitiveness, consistent in variants:
        sim = Simulator(seed=seed, trace=False)
        rng = sim.rng(f"e5p.{name}")
        users = casual_population(rng, users_per_cell)
        agents = []
        for faculties in users:
            agent = UserAgent(sim, faculties.name, faculties,
                              intuitiveness=intuitiveness,
                              consistent_metaphors=consistent)
            agent.attempt(synthetic_procedure(burden))
            agents.append(agent)
        sim.run(until=3600.0)
        results = [a.results[0] for a in agents if a.results]
        result.add_row(variant=name, burden=burden,
                       completed=sum(r.completed for r in results)
                       / max(1, len(results)),
                       abandoned=sum(r.abandoned for r in results)
                       / max(1, len(results)))
    return result
