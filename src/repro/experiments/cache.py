"""Content-addressed run cache for incremental sweeps.

PR 4's determinism linter keeps every ``run_one`` a pure function of
``(code, point, seed)`` — which is exactly the precondition for sound
memoization.  This module turns that invariant into wall-clock savings:
each (point, seed) pair of a sweep is keyed by the SHA-256 of a canonical
JSON of

    (source digest of ``src/repro``, experiment id, run_one identity,
     point, seed, schema version)

and its measured row (plus telemetry summary) is stored as one small JSON
file under a content-addressed directory.  Re-invoking the same sweep
returns byte-identical rows from disk in milliseconds; editing one axis
value recomputes only the new points; editing *any* source file under
``src/repro`` changes the source digest and invalidates everything —
no manual cache management, no stale results.

Key properties:

* **Keys are process-independent.**  The canonical JSON uses sorted keys
  and exact float repr, so the same grid hashed in a fresh interpreter
  yields identical keys (pinned by a subprocess test).
* **Misses are the only failure mode.**  Corrupted, truncated or
  version-skewed entries read as misses and are recomputed — a cache
  must never be able to kill the sweep that asked for it.
* **Only identifiable work is cached.**  A module-level ``run_one`` (or a
  ``functools.partial`` over one with JSON-serializable bound arguments)
  has a stable cross-process identity that includes a digest of its own
  source file, so a ``run_one`` living *outside* ``src/repro`` still
  invalidates when its module is edited.  Lambdas, closures and bound
  methods do not — their captured state (cells, ``__self__``) is
  invisible to the key — so they are counted as ``uncacheable`` and
  always computed.
* **Rows round-trip exactly or not at all.**  Before an entry is stored,
  the row is JSON round-tripped and compared ``==`` to the original;
  any value JSON cannot represent faithfully (tuples, numpy scalars)
  makes that row uncacheable instead of silently mutating on replay.

Overrides: ``REPRO_CACHE_DIR`` moves the store, ``REPRO_CACHE=1`` turns
caching on for every sweep in the process, ``REPRO_NO_CACHE=1`` wins over
everything except an explicitly passed :class:`RunCache` instance.
"""

from __future__ import annotations

import functools
import hashlib
import inspect
import json
import math
import os
import pathlib
import re
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from ..kernel.errors import ExperimentError
from ..metrics.counters import Counter

#: Bump when the entry layout (or the meaning of a key component)
#: changes; old entries then read as misses instead of mis-decoding.
CACHE_SCHEMA_VERSION = 1

#: Environment variable overriding the on-disk location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Set (to any non-empty value) to enable caching for every sweep.
CACHE_ON_ENV = "REPRO_CACHE"

#: Set to force caching off; wins over ``REPRO_CACHE`` and ``cache=True``.
CACHE_OFF_ENV = "REPRO_NO_CACHE"


def default_cache_dir() -> pathlib.Path:
    """Resolve the cache directory (``REPRO_CACHE_DIR`` or ``~/.cache``)."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return pathlib.Path(override)
    return pathlib.Path.home() / ".cache" / "repro" / "runs"


# ---------------------------------------------------------------------------
# Source digest — the code component of every key
# ---------------------------------------------------------------------------

_SOURCE_DIGEST_MEMO: Dict[pathlib.Path, str] = {}


def source_digest(root: Optional[pathlib.Path] = None) -> str:
    """SHA-256 over every ``*.py`` file under the ``repro`` package.

    Files are walked in sorted relative-path order and each contributes
    its path and raw bytes, so the digest is stable across processes and
    platforms but changes when any source file is edited, added or
    removed.  Memoized per process: source does not change under a
    running interpreter, and a bench/report session asks thousands of
    times.
    """
    if root is None:
        # The repro package directory, derived from this file's location
        # (an ``import repro`` here would be an upward layer reference).
        root = pathlib.Path(__file__).resolve().parent.parent
    root = pathlib.Path(root)
    memo = _SOURCE_DIGEST_MEMO.get(root)
    if memo is not None:
        return memo
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(path.relative_to(root).as_posix().encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    value = digest.hexdigest()
    _SOURCE_DIGEST_MEMO[root] = value
    return value


# ---------------------------------------------------------------------------
# run_one identity and key derivation
# ---------------------------------------------------------------------------

_FUNCTION_SOURCE_MEMO: Dict[str, Optional[str]] = {}


def _function_source_digest(run_one: Callable[..., Any]) -> Optional[str]:
    """SHA-256 of ``run_one``'s source *file*, or None when it has none.

    The package-wide :func:`source_digest` only covers ``src/repro``; a
    ``run_one`` defined in user code would otherwise be keyed by name
    alone, silently replaying stale rows after its body (or a helper in
    the same module) is edited.  Hashing the whole source file — not just
    the function body — catches same-module helpers too.  Memoized per
    path for the same reason as :func:`source_digest`.
    """
    try:
        path = inspect.getsourcefile(run_one)
    except TypeError:
        return None
    if not path:
        return None
    if path in _FUNCTION_SOURCE_MEMO:
        return _FUNCTION_SOURCE_MEMO[path]
    try:
        value: Optional[str] = hashlib.sha256(
            pathlib.Path(path).read_bytes()).hexdigest()
    except OSError:
        value = None
    _FUNCTION_SOURCE_MEMO[path] = value
    return value


def run_one_identity(run_one: Callable[..., Any]) -> Optional[str]:
    """A stable cross-process name for ``run_one``, or None if it has none.

    Module-level functions are identified by ``module:qualname`` plus a
    digest of their source file (so editing a ``run_one`` that lives
    outside ``src/repro`` still invalidates its entries); a
    ``functools.partial`` chain over one additionally contributes its
    bound arguments (canonical JSON).  Lambdas, closures, locally defined
    functions and bound methods return None — their behaviour depends on
    state (cells, ``__self__``) the key cannot see, so caching them would
    be unsound.
    """
    if isinstance(run_one, functools.partial):
        inner = run_one_identity(run_one.func)
        if inner is None:
            return None
        try:
            bound = canonical_json({"args": list(run_one.args),
                                    "keywords": dict(run_one.keywords)})
        except ExperimentError:
            return None
        return f"partial({inner}, {bound})"
    if getattr(run_one, "__self__", None) is not None:
        # A bound method: __qualname__/__closure__ look clean, but the
        # instance state behind __self__ is invisible to the key —
        # Runner(1).run and Runner(1000).run would collide.
        return None
    qualname = getattr(run_one, "__qualname__", None)
    module = getattr(run_one, "__module__", None)
    if not qualname or not module:
        return None
    if "<lambda>" in qualname or "<locals>" in qualname:
        return None
    if getattr(run_one, "__closure__", None):
        return None
    src = _function_source_digest(run_one)
    if src is None:
        return None
    return f"{module}:{qualname}#{src[:16]}"


def canonical_json(value: Any) -> str:
    """Canonical (sorted-key, compact) JSON for key material.

    Raises :class:`ExperimentError` for values JSON cannot represent —
    a cache key must never be derived from a lossy encoding.
    """
    try:
        return json.dumps(value, sort_keys=True, separators=(",", ":"),
                          allow_nan=True)
    except (TypeError, ValueError) as exc:
        raise ExperimentError(
            f"value is not JSON-serializable for cache keying: {exc}"
        ) from exc


def cache_key(experiment_id: str, run_one_name: str,
              point: Mapping[str, Any], seed: int,
              src_digest: Optional[str] = None,
              schema_version: Optional[int] = None) -> str:
    """SHA-256 hex key for one (point, seed) pair of a sweep.

    Any component changing — a point value, the seed, the experiment id,
    the run_one identity, one byte of ``src/repro``, or the schema
    version — yields a different key; equal inputs yield equal keys in
    any process.
    """
    if schema_version is None:
        schema_version = CACHE_SCHEMA_VERSION
    material = canonical_json({
        "source": src_digest if src_digest is not None else source_digest(),
        "experiment_id": experiment_id,
        "run_one": run_one_name,
        "point": dict(point),
        "seed": seed,
        "schema": schema_version,
    })
    return hashlib.sha256(material.encode()).hexdigest()


# ---------------------------------------------------------------------------
# Stats
# ---------------------------------------------------------------------------

class CacheStats:
    """Monotone counters describing one :class:`RunCache`'s lifetime.

    Built from the metrics layer's :class:`~repro.metrics.counters.Counter`
    so a cache can be wired into a
    :class:`~repro.metrics.registry.MetricsRegistry` via
    :meth:`RunCache.register_metrics` and show up in snapshots alongside
    every other instrument.
    """

    FIELDS = ("hits", "misses", "stores", "corrupt", "uncacheable")

    def __init__(self) -> None:
        self.hits = Counter("experiments.cache.hits")
        self.misses = Counter("experiments.cache.misses")
        self.stores = Counter("experiments.cache.stores")
        self.corrupt = Counter("experiments.cache.corrupt")
        self.uncacheable = Counter("experiments.cache.uncacheable")

    def snapshot(self) -> Dict[str, float]:
        out = {name: getattr(self, name).value for name in self.FIELDS}
        lookups = out["hits"] + out["misses"]
        out["hit_rate"] = out["hits"] / lookups if lookups else 0.0
        return out


# ---------------------------------------------------------------------------
# The on-disk store
# ---------------------------------------------------------------------------

#: The entry layout: a two-hex shard directory holding <64-hex>.json files.
_SHARD_RE = re.compile(r"[0-9a-f]{2}")
_ENTRY_RE = re.compile(r"[0-9a-f]{64}\.json")


class RunCache:
    """Content-addressed store of measured sweep rows.

    Entries live at ``<dir>/<key[:2]>/<key>.json`` (two-level fan-out so
    a million-entry campaign does not produce a million-entry directory)
    and are written atomically: serialized to ``<name>.tmp.<pid>`` then
    ``os.replace``d into place, so a crashed or concurrent writer can
    truncate only its own temp file, never a published entry.
    """

    def __init__(self, directory: Optional[pathlib.Path] = None) -> None:
        self.directory = pathlib.Path(directory if directory is not None
                                      else default_cache_dir())
        self.stats = CacheStats()

    # -- key plumbing ---------------------------------------------------
    def _entry_path(self, key: str) -> pathlib.Path:
        return self.directory / key[:2] / f"{key}.json"

    # -- lookup / store -------------------------------------------------
    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored ``{"row": ..., "telemetry": ...}`` entry, or None.

        Unreadable, truncated, non-JSON or version-skewed entries count
        as ``corrupt`` and read as misses — never as errors.
        """
        path = self._entry_path(key)
        try:
            body = path.read_text()
        except OSError:
            self.stats.misses.add()
            return None
        try:
            entry = json.loads(body)
            if (not isinstance(entry, dict)
                    or entry.get("schema") != CACHE_SCHEMA_VERSION
                    or not isinstance(entry.get("row"), dict)):
                raise ValueError("malformed cache entry")
        except ValueError:
            self.stats.corrupt.add()
            self.stats.misses.add()
            return None
        self.stats.hits.add()
        return entry

    def put(self, key: str, row: Mapping[str, Any],
            telemetry: Any = None) -> bool:
        """Store one measured row; returns False when the row cannot be
        cached faithfully (non-JSON values or lossy round-trips)."""
        row = dict(row)
        entry = {"schema": CACHE_SCHEMA_VERSION, "key": key,
                 "row": row, "telemetry": telemetry}
        try:
            body = json.dumps(entry, allow_nan=True)
            # A tuple would come back as a list, an int-valued float as
            # itself but a numpy scalar would not survive at all: only
            # rows that replay *exactly* may enter the cache.  NaN rows
            # (averaged_over_seeds emits them for empty groups) round-trip
            # faithfully through allow_nan and must stay cacheable, so
            # the comparison is NaN-aware.
            replay = json.loads(body)
            same = (_json_equal(replay["row"], row)
                    and _json_equal(replay["telemetry"], telemetry))
        except (TypeError, ValueError):
            same = False
        if not same:
            self.stats.uncacheable.add()
            return False
        path = self._entry_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        tmp.write_text(body)
        os.replace(tmp, path)
        self.stats.stores.add()
        return True

    # -- maintenance ----------------------------------------------------
    def _entry_files(self):
        """Yield paths matching the entry layout — a two-hex shard dir
        containing ``<64-hex>.json`` — and nothing else.  ``clear`` and
        ``disk_stats`` walk only these so a mistyped ``REPRO_CACHE_DIR``
        (or ``cache clear --dir``) pointed at a project directory can
        never delete unrelated JSON files."""
        if not self.directory.is_dir():
            return
        for shard in sorted(self.directory.iterdir()):
            if not (shard.is_dir() and _SHARD_RE.fullmatch(shard.name)):
                continue
            for path in sorted(shard.iterdir()):
                if (_ENTRY_RE.fullmatch(path.name)
                        and path.name.startswith(shard.name)):
                    yield path

    def clear(self) -> int:
        """Delete every entry (and leftover temp file); returns how many
        entries were removed.  Only files matching the entry layout are
        touched — foreign files in a misconfigured directory survive."""
        removed = 0
        for path in list(self._entry_files()):
            shard = path.parent
            try:
                path.unlink()
                removed += 1
            except OSError:
                continue
            for tmp in shard.glob(f"{path.name}.tmp.*"):
                try:
                    tmp.unlink()
                except OSError:
                    continue
            try:
                shard.rmdir()  # only succeeds once the shard is empty
            except OSError:
                pass
        return removed

    def disk_stats(self) -> Dict[str, Any]:
        """On-disk shape: entry count and total bytes (for ``cli cache``)."""
        entries = 0
        size = 0
        for path in self._entry_files():
            try:
                size += path.stat().st_size
            except OSError:
                continue
            entries += 1
        return {"directory": str(self.directory),
                "entries": entries, "bytes": size}

    def register_metrics(self, registry: Any) -> Callable[[], None]:
        """Expose this cache's counters as a registry probe
        (``experiments.cache``); returns the unregister function."""
        return registry.register_probe("experiments.cache",
                                       self.stats.snapshot)


def _json_equal(replayed: Any, original: Any) -> bool:
    """True when JSON replay preserved the value exactly — same *types*
    (``1.0 == 1`` but a cached int must not come back a float, a tuple
    must not come back a list) and same values, with ``NaN`` treated as
    equal to itself so NaN-bearing rows stay cacheable."""
    if type(replayed) is not type(original):  # noqa: E721
        return False
    if isinstance(original, dict):
        return (list(replayed) == list(original)
                and all(_json_equal(replayed[k], v)
                        for k, v in original.items()))
    if isinstance(original, list):
        return (len(replayed) == len(original)
                and all(map(_json_equal, replayed, original)))
    if isinstance(original, float) and math.isnan(original):
        return math.isnan(replayed)
    return replayed == original


# ---------------------------------------------------------------------------
# Policy resolution (the sweep() entry point)
# ---------------------------------------------------------------------------

def resolve_cache(cache: Any) -> Optional["RunCache"]:
    """Turn ``sweep(..., cache=...)`` into a :class:`RunCache` or None.

    Precedence, strongest first:

    1. an explicit :class:`RunCache` instance is always honoured;
    2. ``REPRO_NO_CACHE`` forces caching off;
    3. explicit ``cache=True`` / ``cache=False``;
    4. ``REPRO_CACHE`` turns caching on;
    5. default: off.
    """
    if isinstance(cache, RunCache):
        return cache
    if os.environ.get(CACHE_OFF_ENV):
        return None
    if cache is True:
        return RunCache()
    if cache is False:
        return None
    if cache is None:
        return RunCache() if os.environ.get(CACHE_ON_ENV) else None
    raise ExperimentError(
        f"cache must be None, a bool or a RunCache, not {cache!r}")
