"""E2-scale — service discovery as the smart space fills up.

"Service discovery, self-configuration, and dynamic resource sharing" has
a scaling dimension the paper flags ("the effect of a high concentration
of these devices needs to be studied"): every registered service's reply
carries its proxy code, so a *broad* lookup ("show me everything") grows
linearly with the service population while a *filtered* template stays
flat.  This experiment populates a room with N registered services and
measures both query shapes.
"""

from __future__ import annotations

from typing import Sequence

from ..discovery.client import ServiceDiscoveryClient
from ..discovery.records import (
    MATCH_ALL,
    ServiceItem,
    ServiceProxy,
    ServiceTemplate,
    new_service_id,
)
from ..phys.devices import Device
from .harness import ExperimentResult, experiment
from .workloads import projector_room


@experiment("E2-scale")
def run(service_counts: Sequence[int] = (4, 16, 64, 256),
        proxy_bytes: int = 4096, seed: int = 26,
        settle_s: float = 8.0, horizon: float = 40.0) -> ExperimentResult:
    """Lookup latency and reply size vs number of registered services."""
    result = ExperimentResult(
        "E2-scale", "lookup cost vs registered-service population",
        ["services", "query", "latency_s", "matches", "reply_kb",
         "stations", "cull_hit_rate"])
    for count in service_counts:
        room = projector_room(seed=seed, trace=False, register=False)
        sim = room.sim
        # Each appliance hosts one service; a handful of physical hosts
        # carry them so the medium holds a realistic station count.
        hosts = []
        for h in range(min(count, 8)):
            hosts.append(Device(sim, room.world, f"host-{h}",
                                (5.0 + 4.0 * h, 20.0), medium=room.medium))
        clients = [ServiceDiscoveryClient(sim, host) for host in hosts]
        for i in range(count):
            host_index = i % len(hosts)
            item = ServiceItem(
                new_service_id(), f"appliance-{i}",
                ServiceProxy(hosts[host_index].name, 60 + i, "app",
                             code_bytes=proxy_bytes))
            clients[host_index].discover(
                lambda _loc, c=clients[host_index], it=item:
                c.register(it, 120.0))

        measurements = {}

        def measure(query_name: str, template) -> None:
            asked = sim.now

            def on_result(items, q=query_name, t0=asked) -> None:
                reply_bytes = sum(i.wire_bytes for i in items)
                measurements[q] = (sim.now - t0, len(items),
                                   reply_bytes / 1024.0)

            room.laptop_discovery.find(template, on_result,
                                       max_matches=count)

        # Staggered so one reply cannot queue behind the other at the
        # registrar's per-destination transport FIFO.
        sim.schedule(settle_s, measure, "filtered",
                     ServiceTemplate(service_type=f"appliance-{count - 1}"))
        sim.schedule(settle_s + 10.0, measure, "broad", MATCH_ALL)
        sim.run(until=horizon)
        stations = len(room.medium.stations())
        cull_hit_rate = room.medium.culling_stats()["cull_rate"]
        for query_name in ("broad", "filtered"):
            latency, matches, reply_kb = measurements.get(
                query_name, (float("nan"), 0, 0.0))
            result.add_row(services=count, query=query_name,
                           latency_s=latency, matches=matches,
                           reply_kb=reply_kb, stations=stations,
                           cull_hit_rate=cull_hit_rate)
    result.notes.append(
        "broad queries scale linearly in the service population (every "
        "match ships its proxy code); filtered templates stay flat — "
        "attribute matching is what keeps a crowded smart space usable")
    return result
