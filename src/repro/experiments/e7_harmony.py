"""E7 — intentional-layer harmony and adoption.

The paper's honest answer about its own prototype: "in its present form,
our Smart Projector will not necessarily be in harmony with the needs of
a casual user expecting a commercial-grade product, but it does satisfy
the needs of its intended users."  We score both design purposes against
both goals across populations and convert harmony into predicted
adoption.
"""

from __future__ import annotations

import numpy as np

from ..kernel.scheduler import Simulator
from ..user.goals import (
    adoption_probability,
    commercial_product_purpose,
    harmony,
    presentation_goal,
    research_goal,
    research_prototype_purpose,
)
from ..user.population import casual_population, lab_population
from .harness import ExperimentResult, experiment


@experiment("E7")
def run(population_size: int = 100, seed: int = 12) -> ExperimentResult:
    """Harmony scores and adoption for each (purpose, population) pair."""
    sim = Simulator(seed=seed, trace=False)
    rng = sim.rng("e7")
    populations = {
        "researchers": (lab_population(rng, population_size), research_goal()),
        "casual-presenters": (casual_population(rng, population_size),
                              presentation_goal()),
    }
    purposes = {
        "research-prototype": research_prototype_purpose(),
        "commercial-product": commercial_product_purpose(),
    }
    result = ExperimentResult(
        "E7", "intentional-layer harmony and predicted adoption",
        ["purpose", "population", "harmony_score", "in_harmony_fraction",
         "mean_adoption"])
    for purpose_name, purpose in purposes.items():
        for population_name, (users, goal) in populations.items():
            reports = [harmony(purpose, goal, user) for user in users]
            adoptions = [adoption_probability(r, u)
                         for r, u in zip(reports, users)]
            result.add_row(
                purpose=purpose_name, population=population_name,
                harmony_score=float(np.mean([r.score for r in reports])),
                in_harmony_fraction=float(np.mean(
                    [r.in_harmony for r in reports])),
                mean_adoption=float(np.mean(adoptions)))
    result.notes.append(
        "research prototype: harmonious with researchers, not with casual "
        "presenters; the commercial redesign flips the casual column "
        "(and drops the researcher-only observability capability)")
    return result
