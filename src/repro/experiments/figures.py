"""F1–F5 — regenerating the paper's five figures.

Each figure function renders from the model's data structures and this
experiment wraps them as results so the benchmark suite regenerates every
figure alongside every table.
"""

from __future__ import annotations

from ..core.figures import ALL_FIGURES
from ..core.layers import Layer, RELATIONS
from .harness import ExperimentResult, experiment


@experiment("F1-F5")
def run() -> ExperimentResult:
    """Render all five figures; rows record size and key structural facts."""
    result = ExperimentResult(
        "F1-F5", "regenerated conceptual-model figures",
        ["figure", "lines", "mentions_relation", "rendered_chars"])
    relation_for = {
        1: None,
        2: RELATIONS[Layer.PHYSICAL],
        3: RELATIONS[Layer.RESOURCE],
        4: RELATIONS[Layer.ABSTRACT],
        5: RELATIONS[Layer.INTENTIONAL],
    }
    for number in sorted(ALL_FIGURES):
        text = ALL_FIGURES[number]()
        relation = relation_for[number]
        result.add_row(figure=f"Figure {number}",
                       lines=len(text.splitlines()),
                       mentions_relation=(relation in text
                                          if relation else True),
                       rendered_chars=len(text))
    return result
