"""Performance trajectory benchmarks: ``BENCH_<name>.json`` writers.

The ROADMAP's north star is a simulator that runs "as fast as the hardware
allows"; this module is how that claim stays measured rather than asserted.
It runs the E10-style kernel microbenchmarks and an E2 sweep benchmark
in-process, writes machine-readable ``BENCH_kernel.json`` /
``BENCH_sweeps.json`` snapshots (events/sec, sweep wall time, link-cache
hit rate), and gates against the committed baseline so a regression fails
``make bench`` instead of landing silently.

Numbers are wall-clock and therefore machine-dependent: the gate compares
against ``benchmarks/baseline_kernel.json`` *relative* to when that file
was last regenerated (``--update-baseline``), with a generous tolerance.
"""

from __future__ import annotations

import json
import pathlib
import platform
import time
from typing import Any, Callable, Dict, List, Optional

from ..kernel.scheduler import Simulator

#: Events per kernel microbenchmark run (matches benchmarks/test_bench_kernel.py).
KERNEL_EVENTS: int = 20_000

#: Allowed fractional slowdown vs the committed baseline before failing.
REGRESSION_TOLERANCE: float = 0.20


# ---------------------------------------------------------------------------
# Kernel microbenchmarks (the E10 scalability story)
# ---------------------------------------------------------------------------

def _timer_chain_schedule() -> int:
    """The classic self-rescheduling timer chain via the public API."""
    sim = Simulator(seed=1, trace=False)
    counter = [0]

    def tick() -> None:
        counter[0] += 1
        if counter[0] < KERNEL_EVENTS:
            sim.schedule(0.001, tick)

    sim.schedule(0.0, tick)
    sim.run()
    return counter[0]


def _timer_chain_bound() -> int:
    """The same chain through ``schedule_bound`` — the MAC/radio hot path."""
    sim = Simulator(seed=1, trace=False)
    counter = [0]

    def tick() -> None:
        counter[0] += 1
        if counter[0] < KERNEL_EVENTS:
            sim.schedule_bound(0.001, tick)

    sim.schedule_bound(0.0, tick)
    sim.run()
    return counter[0]


def _events_per_sec(fn: Callable[[], int], repeats: int = 5) -> float:
    fn()  # warm-up
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        count = fn()
        best = min(best, time.perf_counter() - t0)
    return count / best


#: Iterations of the calibration workload (see :func:`calibration_spin`).
CALIBRATION_OPS: int = 200_000


def calibration_spin() -> int:
    """Machine-speed reference: a fixed pure-Python workload that no kernel
    change touches.  The regression gate divides throughput by this so a
    shared box running 2x slower today than when the baseline was recorded
    does not read as a kernel regression (and a real regression still
    shows, because it moves events/sec without moving this)."""
    total = 0
    for i in range(CALIBRATION_OPS):
        total += i & 7
    return total


def _calibration_ops_per_sec(repeats: int = 5) -> float:
    calibration_spin()  # warm-up
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        calibration_spin()
        best = min(best, time.perf_counter() - t0)
    return CALIBRATION_OPS / best


def bench_kernel(repeats: int = 5) -> Dict[str, Any]:
    """Measure kernel event throughput on both scheduling paths."""
    return {
        "name": "kernel",
        "events_per_run": KERNEL_EVENTS,
        "events_per_sec": _events_per_sec(_timer_chain_bound, repeats),
        "events_per_sec_public_schedule":
            _events_per_sec(_timer_chain_schedule, repeats),
        "calibration_ops_per_sec": _calibration_ops_per_sec(repeats),
        "source": "in-process",
    }


# ---------------------------------------------------------------------------
# Sweep benchmark (E2 density sweep, serial vs parallel, cache hit rate)
# ---------------------------------------------------------------------------

def bench_sweeps(workers: int = 4,
                 densities=(0, 2, 4, 8),
                 duration: float = 5.0) -> Dict[str, Any]:
    """Time the E2 sweep serial vs parallel and report cache behaviour.

    The parallel/serial row comparison doubles as a determinism check —
    ``rows_identical`` must be True on every machine.
    """
    from ..phys.mac import WirelessMedium  # noqa: F401  (import sanity)
    from .e2_interference import run as e2_run
    from .workloads import interferer_field, projector_room

    t0 = time.perf_counter()
    serial = e2_run(densities=densities, duration=duration)
    serial_wall = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = e2_run(densities=densities, duration=duration, workers=workers)
    parallel_wall = time.perf_counter() - t0

    # Link-cache hit rate on a representative dense room.
    room = projector_room(seed=2, trace=False, register=False)
    interferer_field(room, 16, frames_per_second=20.0)
    room.sim.run(until=3.0)
    cache_stats = room.medium.link_cache.stats()

    return {
        "name": "sweeps",
        "sweep_points": len(serial.rows),
        "duration_per_point_s": duration,
        "serial_wall_s": serial_wall,
        "parallel_wall_s": parallel_wall,
        "workers": workers,
        "parallel_speedup": serial_wall / parallel_wall if parallel_wall else 0.0,
        "rows_identical": serial.rows == parallel.rows,
        "link_cache": cache_stats,
    }


# ---------------------------------------------------------------------------
# JSON persistence and the regression gate
# ---------------------------------------------------------------------------

def _environment() -> Dict[str, str]:
    return {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "system": platform.system(),
    }


def write_bench_json(directory: pathlib.Path, payload: Dict[str, Any]) -> pathlib.Path:
    """Write ``BENCH_<name>.json`` under ``directory`` and return the path."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{payload['name']}.json"
    body = dict(payload)
    body["environment"] = _environment()
    path.write_text(json.dumps(body, indent=2, sort_keys=True) + "\n")
    return path


def load_baseline(path: pathlib.Path) -> Optional[Dict[str, Any]]:
    path = pathlib.Path(path)
    if not path.exists():
        return None
    return json.loads(path.read_text())


def check_regression(current: Dict[str, Any],
                     baseline: Optional[Dict[str, Any]],
                     tolerance: float = REGRESSION_TOLERANCE) -> List[str]:
    """Compare kernel throughput against the committed baseline.

    Returns a list of human-readable failures (empty = pass).  A missing
    baseline passes with a warning-free result so fresh clones can bootstrap
    one with ``--update-baseline``.

    The committed baseline should be *conservative* — the slowest
    full-suite figures the reference machine produces, not its best day —
    because shared-box throughput legitimately swings (CPU-frequency
    ramps, host load phases); see docs/performance.md.  The
    ``calibration_ops_per_sec`` figure travels along as machine-speed
    context for a human reading two snapshots, but does not enter the
    gate: observed host noise slows the allocation-heavy kernel loops
    without slowing pure arithmetic, so rescaling by it misfires.
    """
    if baseline is None:
        return []
    if baseline.get("source") != current.get("source"):
        # In-process timings and pytest-benchmark timings are not directly
        # comparable; gate only like against like.
        return []
    failures = []
    for key in ("events_per_sec", "events_per_sec_public_schedule"):
        base = baseline.get(key)
        now = current.get(key)
        if not base or not now:
            continue
        floor = base * (1.0 - tolerance)
        if now < floor:
            failures.append(
                f"{key}: {now:,.0f} events/sec is more than "
                f"{tolerance:.0%} below the committed baseline "
                f"{base:,.0f} (floor {floor:,.0f})")
    return failures


def kernel_metrics_from_pytest_json(path: pathlib.Path) -> Optional[Dict[str, Any]]:
    """Extract kernel throughput from a ``pytest --benchmark-json`` dump.

    Lets ``make bench`` run the statistics-grade pytest-benchmark suite and
    still flow through the same BENCH_kernel.json + gate plumbing.  Uses the
    ``min`` statistic: on shared/bursty machines the best observed round is
    far more stable than the mean, and a genuine kernel regression moves the
    minimum too.
    """
    data = json.loads(pathlib.Path(path).read_text())
    keys = {
        "test_kernel_event_throughput":
            ("events_per_sec", KERNEL_EVENTS),
        "test_kernel_public_schedule_throughput":
            ("events_per_sec_public_schedule", KERNEL_EVENTS),
        "test_machine_calibration":
            ("calibration_ops_per_sec", CALIBRATION_OPS),
    }
    out: Dict[str, Any] = {}
    for entry in data.get("benchmarks", ()):
        name = entry.get("name", "")
        for test, (key, count) in keys.items():
            if name.startswith(test):
                out[key] = count / entry["stats"]["min"]
    if "events_per_sec" not in out:
        return None
    out.update(name="kernel", events_per_run=KERNEL_EVENTS,
               source="pytest-benchmark")
    return out
