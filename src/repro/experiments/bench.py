"""Performance trajectory benchmarks: ``BENCH_<name>.json`` writers.

The ROADMAP's north star is a simulator that runs "as fast as the hardware
allows"; this module is how that claim stays measured rather than asserted.
It runs the E10-style kernel microbenchmarks and an E2 sweep benchmark
in-process, writes machine-readable ``BENCH_kernel.json`` /
``BENCH_sweeps.json`` snapshots (events/sec, sweep wall time, link-cache
hit rate), and gates against the committed baseline so a regression fails
``make bench`` instead of landing silently.

Numbers are wall-clock and therefore machine-dependent: the gate compares
against ``benchmarks/baseline_kernel.json`` *relative* to when that file
was last regenerated (``--update-baseline``), with a generous tolerance.
"""

from __future__ import annotations

import json
import pathlib
import platform
import time
from typing import Any, Callable, Dict, List, Optional

from ..kernel.scheduler import Simulator

#: Events per kernel microbenchmark run (matches benchmarks/test_bench_kernel.py).
KERNEL_EVENTS: int = 20_000

#: Allowed fractional slowdown vs the committed baseline before failing.
REGRESSION_TOLERANCE: float = 0.20

#: Calibration-relative floor on kernel speedup vs the committed baseline.
#: The dispatch-core rewrite (tuple heap entries + monomorphic run loops)
#: must hold a >=2x events/sec advantage over the pre-rewrite baseline
#: *after* normalising both sides by their recorded
#: ``calibration_ops_per_sec``, so a slower or faster host cannot fake a
#: pass or a failure.  See docs/performance.md ("Interpreter overhead and
#: the dispatch core").
DISPATCH_MIN_SPEEDUP: float = 2.0


# ---------------------------------------------------------------------------
# Kernel microbenchmarks (the E10 scalability story)
# ---------------------------------------------------------------------------

def _timer_chain_schedule() -> int:
    """The classic self-rescheduling timer chain via the public API."""
    sim = Simulator(seed=1, trace=False)
    counter = [0]

    def tick() -> None:
        counter[0] += 1
        if counter[0] < KERNEL_EVENTS:
            sim.schedule(0.001, tick)

    sim.schedule(0.0, tick)
    sim.run()
    return counter[0]


def _timer_chain_bound() -> int:
    """The same chain through ``schedule_bound`` — the MAC/radio hot path."""
    sim = Simulator(seed=1, trace=False)
    counter = [0]

    def tick() -> None:
        counter[0] += 1
        if counter[0] < KERNEL_EVENTS:
            sim.schedule_bound(0.001, tick)

    sim.schedule_bound(0.0, tick)
    sim.run()
    return counter[0]


def _events_per_sec(fn: Callable[[], int], repeats: int = 5) -> float:
    fn()  # warm-up
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        count = fn()
        best = min(best, time.perf_counter() - t0)
    return count / best


#: Iterations of the calibration workload (see :func:`calibration_spin`).
CALIBRATION_OPS: int = 200_000


def calibration_spin() -> int:
    """Machine-speed reference: a fixed pure-Python workload that no kernel
    change touches.  The regression gate divides throughput by this so a
    shared box running 2x slower today than when the baseline was recorded
    does not read as a kernel regression (and a real regression still
    shows, because it moves events/sec without moving this)."""
    total = 0
    for i in range(CALIBRATION_OPS):
        total += i & 7
    return total


def _calibration_ops_per_sec(repeats: int = 5) -> float:
    calibration_spin()  # warm-up
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        calibration_spin()
        best = min(best, time.perf_counter() - t0)
    return CALIBRATION_OPS / best


def backend_payload() -> Dict[str, Any]:
    """Compiled-backend availability, recorded in every kernel payload.

    The compiled backend must never *silently* degrade to pure Python: when
    it is unavailable the payload carries the probe's reason so a reader of
    ``BENCH_kernel.json`` (or the CI log) sees an explicit skip marker
    rather than a pass that quietly measured the fallback.
    """
    from ..kernel.backend import compiled_info, resolve

    available, reason = compiled_info()
    kernels = resolve()
    payload: Dict[str, Any] = {
        "backend": kernels.name,
        "backend_requested": kernels.requested,
        "compiled_available": available,
    }
    if not available:
        payload["compiled_skipped_reason"] = reason
    return payload


def bench_kernel(repeats: int = 5) -> Dict[str, Any]:
    """Measure kernel event throughput on both scheduling paths."""
    out = {
        "name": "kernel",
        "events_per_run": KERNEL_EVENTS,
        "events_per_sec": _events_per_sec(_timer_chain_bound, repeats),
        "events_per_sec_public_schedule":
            _events_per_sec(_timer_chain_schedule, repeats),
        "calibration_ops_per_sec": _calibration_ops_per_sec(repeats),
        "source": "in-process",
    }
    out.update(backend_payload())
    return out


# ---------------------------------------------------------------------------
# Tracing-overhead benchmark (spans/records vs the disabled fast path)
# ---------------------------------------------------------------------------

#: Allowed slowdown of the tracing-*disabled* path vs the committed kernel
#: baseline.  The span-context plumbing lives on the run loop's hot path,
#: so this is the gate that keeps observability free for sweeps.
TRACE_DISABLED_TOLERANCE: float = 0.05

#: Allowed within-run overhead ratios (enabled-path throughput must stay
#: above this fraction of the disabled path measured in the same process).
#: These floors catch accidental O(n) scans in emit/span_begin, not the
#: ordinary ~4-5x record/span allocation cost.
TRACE_RECORDS_MIN_RATIO: float = 0.10
TRACE_SPANS_MIN_RATIO: float = 0.10


def _timer_chain_records() -> int:
    """Timer chain that emits one trace record per event (ring-bounded)."""
    sim = Simulator(seed=1, trace=True, trace_capacity=1024,
                    trace_mode="ring")
    counter = [0]

    def tick() -> None:
        counter[0] += 1
        sim.trace("bench.tick", "bench", "tick", n=counter[0])
        if counter[0] < KERNEL_EVENTS:
            sim.schedule_bound(0.001, tick)

    sim.schedule_bound(0.0, tick)
    sim.run()
    return counter[0]


def _timer_chain_spans() -> int:
    """Timer chain that opens and closes one span per event."""
    sim = Simulator(seed=1, trace=True, trace_capacity=1024,
                    trace_mode="ring")
    counter = [0]

    def tick() -> None:
        counter[0] += 1
        span = sim.span_begin("bench.tick", "bench")
        if counter[0] < KERNEL_EVENTS:
            sim.schedule_bound(0.001, tick)
        sim.span_end(span)

    sim.schedule_bound(0.0, tick)
    sim.run()
    return counter[0]


def bench_trace(repeats: int = 5) -> Dict[str, Any]:
    """Measure tracing overhead: disabled vs records vs spans.

    ``events_per_sec_disabled`` re-times the bound timer chain with tracing
    off — the figure the <5% gate holds against the committed kernel
    baseline.  The enabled-path ratios are *within-run* (same process, same
    thermal state), so they are portable across machines.
    """
    disabled = _events_per_sec(_timer_chain_bound, repeats)
    records = _events_per_sec(_timer_chain_records, repeats)
    spans = _events_per_sec(_timer_chain_spans, repeats)
    return {
        "name": "trace",
        "events_per_run": KERNEL_EVENTS,
        "events_per_sec_disabled": disabled,
        "events_per_sec_records": records,
        "events_per_sec_spans": spans,
        "records_overhead_ratio": records / disabled if disabled else 0.0,
        "spans_overhead_ratio": spans / disabled if disabled else 0.0,
        "source": "in-process",
    }


def check_trace_regression(current: Dict[str, Any],
                           baseline: Optional[Dict[str, Any]],
                           ) -> List[str]:
    """Gate the tracing benchmark.

    Two kinds of check:

    * the tracing-*disabled* throughput must stay within
      :data:`TRACE_DISABLED_TOLERANCE` of the committed kernel baseline's
      ``events_per_sec`` (the span plumbing must not tax sweeps that never
      trace) — skipped when there is no baseline;
    * the enabled paths must stay above fixed fractions of the disabled
      path measured in the same run, catching accidental slow paths in
      ``emit``/``span_begin`` without any machine dependence.
    """
    failures = []
    disabled = current.get("events_per_sec_disabled") or 0.0
    if baseline is not None and baseline.get("events_per_sec"):
        floor = baseline["events_per_sec"] * (1.0 - TRACE_DISABLED_TOLERANCE)
        if disabled < floor:
            failures.append(
                f"events_per_sec_disabled: {disabled:,.0f} is more than "
                f"{TRACE_DISABLED_TOLERANCE:.0%} below the committed kernel "
                f"baseline {baseline['events_per_sec']:,.0f} "
                f"(floor {floor:,.0f}) — tracing must stay free when off")
    for key, minimum in (("records_overhead_ratio", TRACE_RECORDS_MIN_RATIO),
                         ("spans_overhead_ratio", TRACE_SPANS_MIN_RATIO)):
        ratio = current.get(key) or 0.0
        if ratio < minimum:
            failures.append(
                f"{key}: {ratio:.2f} below the {minimum:.2f} floor — the "
                f"enabled tracing path got disproportionately slower")
    return failures


# ---------------------------------------------------------------------------
# Sweep benchmark (E2 density sweep, serial vs parallel, cache hit rate)
# ---------------------------------------------------------------------------

#: Floor on the parallel-over-serial sweep speedup — enforced only on
#: hosts with at least this many usable CPUs (one core per worker), since
#: a fork pool cannot beat serial execution on fewer cores no matter how
#: light the pipe traffic is.
SWEEPS_MIN_PARALLEL_SPEEDUP: float = 2.0
SWEEPS_MIN_CPUS_FOR_GATE: int = 4


def _usable_cpus() -> int:
    import os

    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        import multiprocessing
        return multiprocessing.cpu_count()


def bench_sweeps(workers: int = 4,
                 densities=(0, 2, 4, 8),
                 duration: float = 5.0) -> Dict[str, Any]:
    """Time the E2 sweep serial vs parallel and report cache behaviour.

    The parallel/serial row comparison doubles as a determinism check —
    ``rows_identical`` must be True on every machine.  ``cpus`` records
    how many cores the process may actually use (container affinity, not
    nominal machine size) and ``bytes_shipped`` the pickled traffic that
    crossed the pool pipe — the two numbers that explain a flat speedup.
    """
    from ..phys.mac import WirelessMedium  # noqa: F401  (import sanity)
    from .e2_interference import run as e2_run
    from .workloads import interferer_field, projector_room

    t0 = time.perf_counter()
    serial = e2_run(densities=densities, duration=duration)
    serial_wall = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = e2_run(densities=densities, duration=duration, workers=workers)
    parallel_wall = time.perf_counter() - t0

    # Link-cache hit rate on a representative dense room.
    room = projector_room(seed=2, trace=False, register=False)
    interferer_field(room, 16, frames_per_second=20.0)
    room.sim.run(until=3.0)
    cache_stats = room.medium.link_cache.stats()

    return {
        "name": "sweeps",
        "sweep_points": len(serial.rows),
        "duration_per_point_s": duration,
        "serial_wall_s": serial_wall,
        "parallel_wall_s": parallel_wall,
        "workers": workers,
        "cpus": _usable_cpus(),
        "parallel_speedup": serial_wall / parallel_wall if parallel_wall else 0.0,
        "rows_identical": serial.rows == parallel.rows,
        "bytes_shipped": parallel.meta.get("bytes_shipped"),
        "link_cache": cache_stats,
    }


def check_sweeps_regression(current: Dict[str, Any]) -> List[str]:
    """Gate the sweep benchmark.

    Row identity between serial and parallel runs is mandatory on every
    machine.  The parallel-speedup floor applies only when the host has
    enough usable cores (:data:`SWEEPS_MIN_CPUS_FOR_GATE`) for the fork
    pool to pay at all — on a 1-core container the parallel run shares
    one core with the parent and the ratio is pure scheduling noise.
    """
    failures = []
    if not current.get("rows_identical", False):
        failures.append(
            "rows_identical: parallel sweep rows differ from serial rows")
    cpus = current.get("cpus") or 1
    if cpus >= SWEEPS_MIN_CPUS_FOR_GATE:
        speedup = current.get("parallel_speedup") or 0.0
        if speedup < SWEEPS_MIN_PARALLEL_SPEEDUP:
            failures.append(
                f"parallel_speedup: {speedup:.2f}x below the "
                f"{SWEEPS_MIN_PARALLEL_SPEEDUP:.1f}x floor on a "
                f"{cpus}-cpu host — the pool is shipping too much or "
                f"serialising somewhere")
    return failures


# ---------------------------------------------------------------------------
# Run-cache benchmark (incremental sweeps: cold vs warm)
# ---------------------------------------------------------------------------

#: Machine-independent floor on the warm-cache re-run speedup of the E2
#: sweep.  A warmed cache replays rows from a handful of small JSON files,
#: so real figures are 30-100x; 5x catches the replay path silently
#: recomputing without flapping on slow disks.
CACHE_MIN_WARM_SPEEDUP: float = 5.0

#: Ceiling on the cold-run cost of caching (key hashing + source digest +
#: entry writes) as a fraction of the uncached wall time.
CACHE_MAX_COLD_OVERHEAD: float = 0.05

#: With a committed baseline, the warm speedup may degrade to this
#: fraction of the recorded figure before the gate fires — generous
#: because warm runs are milliseconds and relative timing noise is large.
CACHE_BASELINE_SPEEDUP_FRACTION: float = 0.25


def bench_cache(densities=(0, 2, 4), duration: float = 10.0,
                repeats: int = 3) -> Dict[str, Any]:
    """Cold vs warm E2 sweep through the content-addressed run cache.

    Three modes of the same sweep: *uncached* (``cache=False``), *cold*
    (caching on, empty directory — computes and stores), *warm* (same
    directory again — replays every row from disk).  Uncached and cold
    are interleaved best-of-``repeats`` so a host-load phase cannot land
    on one mode only; each cold round gets a fresh directory.  Rows must
    be byte-identical across all three modes — the cache is only allowed
    to be faster, never different.
    """
    import tempfile

    from .cache import RunCache, source_digest
    from .e2_interference import run as e2_run

    # The source digest is memoized process-wide (one hash per session,
    # amortised over every sweep); prewarm it so the cold figure measures
    # steady-state caching cost, not the one-time hash.
    source_digest()

    kwargs = dict(densities=densities, duration=duration)
    uncached_wall = float("inf")
    cold_wall = float("inf")
    uncached = cold = warm = None
    with tempfile.TemporaryDirectory() as tmp:
        for attempt in range(max(1, repeats)):
            t0 = time.perf_counter()
            uncached = e2_run(cache=False, **kwargs)
            uncached_wall = min(uncached_wall, time.perf_counter() - t0)

            cache = RunCache(pathlib.Path(tmp) / f"round-{attempt}")
            t0 = time.perf_counter()
            cold = e2_run(cache=cache, **kwargs)
            cold_wall = min(cold_wall, time.perf_counter() - t0)

        # Warm replay against the last round's populated cache.
        warm_wall = float("inf")
        for _ in range(max(1, repeats)):
            t0 = time.perf_counter()
            warm = e2_run(cache=cache, **kwargs)
            warm_wall = min(warm_wall, time.perf_counter() - t0)

    identical = (uncached.rows == cold.rows == warm.rows
                 and uncached.columns == cold.columns == warm.columns
                 and uncached.telemetry == cold.telemetry == warm.telemetry)
    return {
        "name": "cache",
        "sweep_points": len(uncached.rows),
        "duration_per_point_s": duration,
        "uncached_wall_s": uncached_wall,
        "cold_wall_s": cold_wall,
        "warm_wall_s": warm_wall,
        "warm_speedup": uncached_wall / warm_wall if warm_wall else 0.0,
        "cold_overhead_ratio": (cold_wall / uncached_wall - 1.0
                                if uncached_wall else 0.0),
        "warm_hit_rate": warm.meta["cache"]["hit_rate"],
        "cold_stores": cold.meta["cache"]["stores"],
        "rows_identical": identical,
        "source": "in-process",
    }


def check_cache_regression(current: Dict[str, Any],
                           baseline: Optional[Dict[str, Any]],
                           ) -> List[str]:
    """Gate the run-cache benchmark.

    Machine-independent checks always run: cached and uncached rows must
    be identical, a warm run must be served entirely from cache, the warm
    speedup must clear :data:`CACHE_MIN_WARM_SPEEDUP` and the cold
    overhead must stay under :data:`CACHE_MAX_COLD_OVERHEAD`.  A
    like-sourced committed baseline additionally floors the warm speedup
    at :data:`CACHE_BASELINE_SPEEDUP_FRACTION` of its recorded figure.
    """
    failures = []
    if not current.get("rows_identical", False):
        failures.append(
            "rows_identical: cached and uncached sweep results diverged — "
            "the run cache replayed different rows than it stored")
    hit_rate = current.get("warm_hit_rate") or 0.0
    if hit_rate < 1.0:
        failures.append(
            f"warm_hit_rate: {hit_rate:.1%} — a warm re-run recomputed "
            f"points it should have replayed (key instability?)")
    speedup = current.get("warm_speedup") or 0.0
    if speedup < CACHE_MIN_WARM_SPEEDUP:
        failures.append(
            f"warm_speedup: {speedup:.1f}x below the "
            f"{CACHE_MIN_WARM_SPEEDUP:.0f}x floor — warm replay is no "
            f"longer paying")
    overhead = current.get("cold_overhead_ratio")
    if overhead is not None and overhead > CACHE_MAX_COLD_OVERHEAD:
        failures.append(
            f"cold_overhead_ratio: {overhead:.1%} above the "
            f"{CACHE_MAX_COLD_OVERHEAD:.0%} ceiling — caching is taxing "
            f"cold sweeps")
    if baseline is not None and baseline.get("source") == current.get("source"):
        base = baseline.get("warm_speedup")
        if base:
            floor = base * CACHE_BASELINE_SPEEDUP_FRACTION
            if speedup < floor:
                failures.append(
                    f"warm_speedup: {speedup:.1f}x is below "
                    f"{CACHE_BASELINE_SPEEDUP_FRACTION:.0%} of the committed "
                    f"baseline {base:.1f}x (floor {floor:.1f}x)")
    return failures


# ---------------------------------------------------------------------------
# Homogeneous-timer storm benchmark (the batched event engine)
# ---------------------------------------------------------------------------

#: MAC-style backoff expiries in the storm (DIFS + slot-quantised delays,
#: so deadlines collide into large same-time cohorts like a dense channel).
STORM_BACKOFFS: int = 100_000

#: Self-rescheduling lease renewals in the storm (Jini-style: renew at
#: 45% of the lease duration, forever).
STORM_RENEWALS: int = 10_000

#: Simulated horizon; every lease renews several times within it.
STORM_HORIZON_S: float = 120.0

#: Machine-independent floor on the batched-vs-legacy events/sec ratio.
#: Both modes run the same seeded storm in the same process back to back,
#: so the ratio is portable; the ISSUE requires >=10x.
STORM_MIN_SPEEDUP: float = 10.0


def _storm_run(batching: bool) -> Dict[str, Any]:
    """One seeded storm run: 100k backoff expiries + 10k renewal chains.

    The two batch classes mirror the hot producers the kernel serves —
    ``mac.attempt`` (slot-quantised one-shot timers) and ``lease.sweep``/
    renewal chains (self-rescheduling periodics) — with bodies small
    enough to vectorise, which is exactly the homogeneous-storm regime
    the batched engine targets.  With ``batching=False`` the same classes
    run as plain per-event heap entries (the legacy path), and outcomes
    must match exactly.
    """
    import numpy as np

    from ..phys.mac import DIFS_S, SLOT_S

    sim = Simulator(seed=5, trace=False, batching=batching)
    rng = sim.rng("storm")
    fired = [0, 0]

    def backoff_fire(_owner: int, _payload: Any) -> None:
        fired[0] += 1

    def backoff_cohort(owners, _payloads) -> None:
        fired[0] += owners.shape[0]

    backoff_q = sim.batch_class("storm.backoff", backoff_fire,
                                cohort_fn=backoff_cohort, cancellable=False)

    # Lease durations are configured constants, not continuous draws: a
    # deployment hands out a handful of standard durations, so leases
    # granted together renew together — the renewal side of the storm
    # arrives as large same-deadline cohorts, like the backoff side.
    durations = np.asarray([30.0, 45.0, 60.0, 90.0, 120.0])
    periods = 0.45 * durations[rng.integers(0, durations.shape[0],
                                            size=STORM_RENEWALS)]

    def renew_fire(owner: int, _payload: Any) -> None:
        fired[1] += 1
        renew_q.schedule(periods[owner], owner)

    def renew_cohort(owners, _payloads) -> None:
        fired[1] += owners.shape[0]
        renew_q.schedule_many(periods[owners], owners=owners)

    renew_q = sim.batch_class("storm.renew", renew_fire,
                              cohort_fn=renew_cohort, cancellable=False)

    slots = rng.integers(0, 32, size=STORM_BACKOFFS)
    backoff_q.schedule_many(DIFS_S + slots * SLOT_S)
    renew_q.schedule_many(periods, owners=np.arange(STORM_RENEWALS))

    t0 = time.perf_counter()
    sim.run(until=STORM_HORIZON_S)
    wall = time.perf_counter() - t0
    return {
        "wall_s": wall,
        "events": sim.events_executed,
        "events_per_sec": sim.events_executed / wall if wall else 0.0,
        "fired_backoffs": fired[0],
        "fired_renewals": fired[1],
        "now": sim.now,
    }


def bench_storm(repeats: int = 3) -> Dict[str, Any]:
    """Batched vs legacy throughput on the homogeneous-timer storm.

    Best-of-``repeats`` per mode, interleaved so a host-load phase cannot
    land on one mode only.  ``outcomes_identical`` must hold on every
    machine: the batched engine is only allowed to be faster, never
    different.
    """
    batched = legacy = None
    batched_wall = legacy_wall = float("inf")
    for _ in range(max(1, repeats)):
        b = _storm_run(batching=True)
        l = _storm_run(batching=False)
        if b["wall_s"] < batched_wall:
            batched_wall, batched = b["wall_s"], b
        if l["wall_s"] < legacy_wall:
            legacy_wall, legacy = l["wall_s"], l
    identical = all(batched[key] == legacy[key] for key in
                    ("events", "fired_backoffs", "fired_renewals", "now"))
    return {
        "name": "storm",
        "backoffs": STORM_BACKOFFS,
        "renewals": STORM_RENEWALS,
        "horizon_s": STORM_HORIZON_S,
        "events": batched["events"],
        "batched_wall_s": batched["wall_s"],
        "legacy_wall_s": legacy["wall_s"],
        "batched_events_per_sec": batched["events_per_sec"],
        "legacy_events_per_sec": legacy["events_per_sec"],
        "speedup": (batched["events_per_sec"] / legacy["events_per_sec"]
                    if legacy["events_per_sec"] else 0.0),
        "outcomes_identical": identical,
        "source": "in-process",
    }


def check_storm_regression(current: Dict[str, Any],
                           baseline: Optional[Dict[str, Any]],
                           tolerance: float = REGRESSION_TOLERANCE,
                           ) -> List[str]:
    """Gate the storm benchmark.

    Machine-independent checks always run: batched and legacy outcomes
    must match exactly and the speedup must clear
    :data:`STORM_MIN_SPEEDUP`.  A like-sourced committed baseline
    additionally floors absolute batched throughput.
    """
    failures = []
    if not current.get("outcomes_identical", False):
        failures.append(
            "outcomes_identical: batched and legacy storm runs diverged — "
            "the batch engine changed simulation outcomes")
    speedup = current.get("speedup") or 0.0
    if speedup < STORM_MIN_SPEEDUP:
        failures.append(
            f"speedup: {speedup:.1f}x below the {STORM_MIN_SPEEDUP:.0f}x "
            f"floor — batched execution is no longer paying on the "
            f"homogeneous storm")
    if baseline is not None and baseline.get("source") == current.get("source"):
        base = baseline.get("batched_events_per_sec")
        now = current.get("batched_events_per_sec")
        if base and now:
            floor = base * (1.0 - tolerance)
            if now < floor:
                failures.append(
                    f"batched_events_per_sec: {now:,.0f} is more than "
                    f"{tolerance:.0%} below the committed baseline "
                    f"{base:,.0f} (floor {floor:,.0f})")
    return failures


# ---------------------------------------------------------------------------
# Population-scale benchmark (spatial-grid audibility culling)
# ---------------------------------------------------------------------------

#: Station counts for the scale benchmark (the ISSUE's 200/500/1000 ladder).
SCALE_STATIONS = (200, 500, 1000)

#: Simulated seconds per scale point (broadcast-heavy, 2 frames/s/station).
SCALE_DURATION_S: float = 2.0

#: Machine-independent floor on culled-vs-exhaustive speedup at the largest
#: population.  Both modes run in the same process back to back, so the
#: ratio is portable; the ISSUE requires >=3x on the reference machine and
#: this gate catches the fast path silently degenerating to a full scan.
SCALE_MIN_SPEEDUP: float = 2.0


def _run_broadcast_point(stations: int, culling: bool,
                         duration: float) -> Dict[str, Any]:
    from .workloads import broadcast_room

    room = broadcast_room(stations, culling=culling)
    t0 = time.perf_counter()
    room.sim.run(until=duration)
    wall = time.perf_counter() - t0
    events = room.sim.events_executed
    return {
        "culling": culling,
        "wall_s": wall,
        "events": events,
        "events_per_sec": events / wall if wall else 0.0,
        "deliveries": sorted(room.deliveries),
        "tx_attempts": sum(m.stats["tx_attempts"] for m in room.macs),
        "rx_frames": sum(m.stats["rx_frames"] for m in room.macs),
        "culling_stats": room.medium.culling_stats(),
    }


def bench_scale(stations=SCALE_STATIONS,
                duration: float = SCALE_DURATION_S) -> Dict[str, Any]:
    """Wall time and events/sec for growing populations, culled vs not.

    Each station count runs the same broadcast-heavy room twice — once
    with the spatial-grid audible-set fast path, once with the exhaustive
    all-stations scan — and the delivery logs must match exactly
    (``outcomes_identical``): the fast path is only allowed to be faster,
    never different.
    """
    rows: List[Dict[str, Any]] = []
    identical = True
    for n in stations:
        culled = _run_broadcast_point(n, True, duration)
        exhaustive = _run_broadcast_point(n, False, duration)
        same = (culled["deliveries"] == exhaustive["deliveries"]
                and culled["tx_attempts"] == exhaustive["tx_attempts"]
                and culled["rx_frames"] == exhaustive["rx_frames"])
        identical = identical and same
        rows.append({
            "stations": n,
            "culled_wall_s": culled["wall_s"],
            "exhaustive_wall_s": exhaustive["wall_s"],
            "culled_events_per_sec": culled["events_per_sec"],
            "exhaustive_events_per_sec": exhaustive["events_per_sec"],
            "speedup": (exhaustive["wall_s"] / culled["wall_s"]
                        if culled["wall_s"] else 0.0),
            "events": culled["events"],
            "deliveries": len(culled["deliveries"]),
            "tx_attempts": culled["tx_attempts"],
            "cull_rate": culled["culling_stats"]["cull_rate"],
            "set_reuses": culled["culling_stats"]["set_reuses"],
            "outcomes_identical": same,
        })
    top = rows[-1]
    return {
        "name": "scale",
        "duration_s": duration,
        "rows": rows,
        "speedup_at_max": top["speedup"],
        "culled_events_per_sec_at_max": top["culled_events_per_sec"],
        "outcomes_identical": identical,
        "source": "in-process",
    }


def check_scale_regression(current: Dict[str, Any],
                           baseline: Optional[Dict[str, Any]],
                           tolerance: float = REGRESSION_TOLERANCE,
                           ) -> List[str]:
    """Gate the scale benchmark.

    Machine-independent checks always run: the culled and exhaustive runs
    must produce identical outcomes, and the speedup at the largest
    population must clear :data:`SCALE_MIN_SPEEDUP`.  When a like-sourced
    committed baseline exists, culled throughput at the largest population
    must additionally stay within ``tolerance`` of it.
    """
    failures = []
    if not current.get("outcomes_identical", False):
        failures.append(
            "outcomes_identical: culled and exhaustive runs diverged — "
            "the audibility fast path changed simulation outcomes")
    speedup = current.get("speedup_at_max") or 0.0
    if speedup < SCALE_MIN_SPEEDUP:
        failures.append(
            f"speedup_at_max: {speedup:.2f}x below the {SCALE_MIN_SPEEDUP:.1f}x "
            f"floor — culling is no longer paying at the largest population")
    if baseline is not None and baseline.get("source") == current.get("source"):
        base = baseline.get("culled_events_per_sec_at_max")
        now = current.get("culled_events_per_sec_at_max")
        if base and now:
            floor = base * (1.0 - tolerance)
            if now < floor:
                failures.append(
                    f"culled_events_per_sec_at_max: {now:,.0f} is more than "
                    f"{tolerance:.0%} below the committed baseline "
                    f"{base:,.0f} (floor {floor:,.0f})")
    return failures


# ---------------------------------------------------------------------------
# Sharded-simulation benchmark (conservative parallel DES)
# ---------------------------------------------------------------------------

#: Cells (= shards) in the disjoint-rooms configuration.
SHARD_CELLS: int = 4

#: Stations per cell; 4 x 300 puts the disjoint config in the ISSUE's
#: 1k-5k band while keeping the single-process oracle under ~10 s.
SHARD_STATIONS_PER_CELL: int = 300

#: Simulated horizon for the disjoint configuration.
SHARD_HORIZON_S: float = 0.5

#: Lookahead for the sharded runs (cross-boundary propagation plus MAC
#: turnaround; generous because the disjoint config freeruns anyway).
SHARD_LOOKAHEAD_S: float = 5e-3

#: Machine-independent floor on oracle-vs-sharded speedup with one shard
#: per cell — applied only with enough usable cores (below).
SHARD_MIN_SPEEDUP: float = 2.0

#: Fork-per-shard parallelism cannot pay on a container pinned to fewer
#: cores than shards; the speedup floor is gated like the sweeps one.
SHARD_MIN_CPUS_FOR_GATE: int = 4


def bench_shard(cells: int = SHARD_CELLS,
                stations_per_cell: int = SHARD_STATIONS_PER_CELL,
                horizon: float = SHARD_HORIZON_S,
                lookahead: float = SHARD_LOOKAHEAD_S) -> Dict[str, Any]:
    """Sharded multi-cell run vs the single-process culled oracle.

    Two configurations, mirroring the equivalence methodology of the
    culling and batching benches:

    * **disjoint rooms** — cells further apart than the interference
      radius, one shard per cell.  Outcomes (per-room delivery logs) and
      merged telemetry must be byte-identical to the oracle on every
      machine; the wall-clock ratio is the headline speedup.
    * **boundary-coupled** — a bridged link and remote-registry traffic
      across shards.  There is no single-process oracle here (the
      boundary latency *is* the model), so the multi-process run is held
      byte-identical to the in-process coordinator instead.
    """
    from ..kernel.shard import ShardedSimulator, merge_summaries
    from ..telemetry.summary import telemetry_summary
    from .cellgrid import (cell_layout, cell_room_builders, cell_rooms,
                           coupled_cell_builders, deliveries_by_room)

    layout = cell_layout(cells=cells, stations_per_cell=stations_per_cell,
                         seed=7)

    t0 = time.perf_counter()
    oracle = cell_rooms(layout)
    oracle.sim.run(until=horizon)
    oracle_wall = time.perf_counter() - t0
    oracle_summary = telemetry_summary(oracle.sim, stream=oracle.aggregator)

    t0 = time.perf_counter()
    engine = ShardedSimulator(cell_room_builders(layout, cells),
                              lookahead=lookahead)
    engine.run(until=horizon)
    sharded_wall = time.perf_counter() - t0
    merged_rows = [entry for rows in engine.results for entry in rows]
    rows_identical = (deliveries_by_room(layout, oracle.deliveries)
                      == deliveries_by_room(layout, merged_rows))
    telemetry_identical = (merge_summaries([oracle_summary])
                           == engine.telemetry())

    # Boundary-coupled: small population, the sync protocol is the load.
    coupled_layout = cell_layout(cells=cells, stations_per_cell=15, seed=3)
    coupled_runs = []
    coupled_walls = []
    for processes in (False, True):
        t0 = time.perf_counter()
        coupled = ShardedSimulator(
            coupled_cell_builders(coupled_layout, cells),
            lookahead=2e-3, processes=processes)
        coupled.run(until=1.0)
        coupled_walls.append(time.perf_counter() - t0)
        coupled_runs.append(coupled)
    inline_run, process_run = coupled_runs
    coupled_identical = (inline_run.results == process_run.results
                         and inline_run.telemetry()
                         == process_run.telemetry())

    return {
        "name": "shard",
        "stations": layout.stations,
        "cells": cells,
        "shards": cells,
        "horizon_s": horizon,
        "lookahead_s": lookahead,
        "oracle_wall_s": oracle_wall,
        "sharded_wall_s": sharded_wall,
        "oracle_deliveries": len(oracle.deliveries),
        "oracle_deliveries_per_sec": (len(oracle.deliveries) / oracle_wall
                                      if oracle_wall else 0.0),
        "speedup": oracle_wall / sharded_wall if sharded_wall else 0.0,
        "mode": engine.stats["mode"],
        "rounds": engine.stats["rounds"],
        "outcomes_identical": rows_identical,
        "telemetry_identical": telemetry_identical,
        "coupled": {
            "stations": coupled_layout.stations,
            "inline_wall_s": coupled_walls[0],
            "process_wall_s": coupled_walls[1],
            "rounds": process_run.stats["rounds"],
            "boundary_events": process_run.stats["boundary_events"],
            "outcomes_identical": coupled_identical,
        },
        "cpus": _usable_cpus(),
        "source": "in-process",
    }


def check_shard_regression(current: Dict[str, Any],
                           baseline: Optional[Dict[str, Any]],
                           tolerance: float = REGRESSION_TOLERANCE,
                           ) -> List[str]:
    """Gate the shard benchmark.

    Outcome identity is mandatory on every machine, in both directions:
    the disjoint sharded run against the single-process oracle, and the
    coupled multi-process run against the in-process coordinator.  The
    :data:`SHARD_MIN_SPEEDUP` floor applies only when the host has at
    least :data:`SHARD_MIN_CPUS_FOR_GATE` usable cores *and* the run
    actually forked (``mode == "processes"``) — on a pinned container
    the shards time-slice one core and the ratio is scheduling noise.
    A like-sourced committed baseline additionally floors the oracle's
    absolute delivery throughput, catching the workload itself slowing
    down under the tolerance everything else is measured against.
    """
    failures = []
    if not current.get("outcomes_identical", False):
        failures.append(
            "outcomes_identical: sharded disjoint-cell rows diverged from "
            "the single-process oracle — partitioned execution changed "
            "simulation outcomes")
    if not current.get("telemetry_identical", False):
        failures.append(
            "telemetry_identical: merged per-shard telemetry diverged "
            "from the oracle summary")
    coupled = current.get("coupled") or {}
    if not coupled.get("outcomes_identical", False):
        failures.append(
            "coupled.outcomes_identical: multi-process coupled run "
            "diverged from the in-process coordinator — boundary-event "
            "ordering is not deterministic")
    cpus = current.get("cpus") or 1
    if (cpus >= SHARD_MIN_CPUS_FOR_GATE
            and current.get("mode") == "processes"):
        speedup = current.get("speedup") or 0.0
        if speedup < SHARD_MIN_SPEEDUP:
            failures.append(
                f"speedup: {speedup:.2f}x below the "
                f"{SHARD_MIN_SPEEDUP:.1f}x floor on a {cpus}-cpu host — "
                f"sharding is no longer paying on disjoint cells")
    if baseline is not None and baseline.get("source") == current.get("source"):
        base = baseline.get("oracle_deliveries_per_sec")
        now = current.get("oracle_deliveries_per_sec")
        if base and now:
            floor = base * (1.0 - tolerance)
            if now < floor:
                failures.append(
                    f"oracle_deliveries_per_sec: {now:,.0f} is more than "
                    f"{tolerance:.0%} below the committed baseline "
                    f"{base:,.0f} (floor {floor:,.0f})")
    return failures


# ---------------------------------------------------------------------------
# Telemetry-export benchmark (JSONL vs columnar vs streaming at 1M events)
# ---------------------------------------------------------------------------

#: Logical trace records in the export comparison (the million-event
#: regime the columnar path exists for).
TELEMETRY_EVENTS: int = 1_000_000

#: Records generated per chunk — the export arms regenerate each chunk
#: and never hold the full record list, so the benchmark itself stays
#: bounded-memory at any event count.
TELEMETRY_CHUNK: int = 20_000

#: One completed span rides along per this many records.
TELEMETRY_SPAN_EVERY: int = 25

#: Machine-independent floor on JSONL-bytes / columnar-bytes.
TELEMETRY_MIN_SIZE_RATIO: float = 3.0

#: Machine-independent floor on JSONL-wall / columnar-wall for the same
#: logical lines (both figures timed in the same process, back to back).
TELEMETRY_MIN_WRITE_SPEEDUP: float = 2.0

#: Ceiling on streaming-aggregation peak memory as a fraction of the
#: record-replay peak for the same run — the "no full record list" gate.
TELEMETRY_MAX_MEMORY_RATIO: float = 0.25

#: Kernel events in the streaming-vs-replay memory probe.
TELEMETRY_MEMORY_EVENTS: int = 200_000

#: Kernel events in the streaming-vs-replay summary equivalence check.
TELEMETRY_SUMMARY_EVENTS: int = 50_000

_TELEMETRY_CATEGORIES = ("mac.tx", "mac.rx", "net.route", "transport.send",
                         "session.lease", "env.sense", "disc.announce",
                         "bench.tick")
_TELEMETRY_SOURCES = tuple(f"station-{i:02d}" for i in range(32))
_TELEMETRY_MESSAGES = ("queued", "sent", "delivered", "dropped",
                       "retry scheduled", "acknowledged", "renewed",
                       "expired")


def _telemetry_chunk(chunk_index: int, size: int):
    """One deterministic chunk of synthetic records + completed spans.

    The mix mirrors real traces: heavily repeated category/source/message
    vocabulary (what dictionary encoding exploits) with a thin stream of
    unique messages (what keeps the string pool honest), and small
    structured payloads drawn from a bounded value set.
    """
    from ..kernel.trace import Span, TraceRecord

    base = chunk_index * size
    records = []
    spans = []
    for k in range(size):
        i = base + k
        if i % 50 == 0:
            message = f"unique event {i}"
        else:
            message = _TELEMETRY_MESSAGES[i % 8]
        records.append(TraceRecord(
            time=i * 1e-3,
            category=_TELEMETRY_CATEGORIES[i % 8],
            source=_TELEMETRY_SOURCES[i % 32],
            message=message,
            data={"n": i & 63, "batch": chunk_index},
        ))
        if i % TELEMETRY_SPAN_EVERY == 0:
            span_id = i // TELEMETRY_SPAN_EVERY + 1
            spans.append(Span(
                span_id=span_id,
                parent_id=span_id - 1 if span_id > 1 and span_id % 4 == 0
                else None,
                category="bench.step",
                source=_TELEMETRY_SOURCES[i % 32],
                start=i * 1e-3,
                end=i * 1e-3 + 5e-4,
                status="ok"))
    return records, spans


def _time_export(writer_factory: Callable[[], Any], events: int,
                 chunk: int) -> Dict[str, Any]:
    """Feed the synthetic workload through one writer, timing only the
    writer calls (chunk generation is identical across formats and runs
    untimed, so the figure isolates export cost)."""
    snapshot = {"time": events * 1e-3,
                "counters": {"bench.records": float(events)},
                "gauges": {}, "latencies": {}, "probes": {}}
    writer = writer_factory()
    wall = 0.0
    chunks = max(1, events // chunk)
    for chunk_index in range(chunks):
        records, spans = _telemetry_chunk(chunk_index, chunk)
        t0 = time.perf_counter()
        for record in records:
            writer.write_record(record)
        for span in spans:
            writer.write_span(span)
        wall += time.perf_counter() - t0
    t0 = time.perf_counter()
    writer.write_metrics(snapshot)
    writer.close()
    wall += time.perf_counter() - t0
    return {"wall_s": wall, "bytes": writer.path.stat().st_size,
            "lines": writer.lines}


def _telemetry_chain(n_events: int, trace_mode: str, attach: bool):
    """A seeded kernel run emitting records/issues/spans every event —
    the live-simulation side of the streaming comparisons."""
    from ..telemetry.streaming import StreamingAggregator

    kwargs = {} if trace_mode == "head" else {"trace_mode": trace_mode}
    sim = Simulator(seed=11, trace=True, **kwargs)
    aggregator = (StreamingAggregator(user_sources=("bench-user",))
                  .attach(sim) if attach else None)
    counter = [0]

    def tick() -> None:
        counter[0] += 1
        i = counter[0]
        sim.trace("bench.tick", "bench", "tick", n=i & 63)
        if i % 100 == 0:
            sim.issue("issue.session", "bench-user", "renewal stalled", n=i)
        if i % TELEMETRY_SPAN_EVERY == 0:
            span = sim.span_begin("bench.step", "bench")
            sim.span_end(span)
        if i < n_events:
            sim.schedule_bound(0.001, tick)

    sim.schedule_bound(0.0, tick)
    sim.run()
    return sim, aggregator


def _peak_memory(fn: Callable[[], Any]) -> int:
    import tracemalloc

    tracemalloc.start()
    try:
        fn()
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


def bench_telemetry(events: int = TELEMETRY_EVENTS,
                    chunk: int = TELEMETRY_CHUNK) -> Dict[str, Any]:
    """JSONL vs columnar export cost plus streaming-aggregation bounds.

    Four arms:

    * **export**: the same ``events`` synthetic records (+ spans + one
      metrics snapshot) through ``JsonlWriter`` and ``ColumnarWriter``,
      chunked so neither the benchmark nor the writers ever hold the
      full record list; reports bytes-on-disk and writer-only wall time.
    * **summary equivalence**: twin seeded kernel runs — one stored and
      replayed, one ``stream``-mode folded by a
      ``StreamingAggregator`` — must produce byte-identical
      ``telemetry_summary`` dicts.
    * **memory**: the same run traced in ``head`` mode (stores every
      record) vs ``stream`` mode (stores nothing), peak traced memory
      compared; streaming must stay under
      :data:`TELEMETRY_MAX_MEMORY_RATIO` of replay.
    * **disabled path**: the bound timer chain with tracing off, the
      figure gated within :data:`TRACE_DISABLED_TOLERANCE` of the
      committed kernel baseline — subscriber/hook plumbing must stay
      free for sweeps that never trace.
    """
    import tempfile

    from ..telemetry.columnar import ColumnarWriter
    from ..telemetry.jsonl import JsonlWriter
    from ..telemetry.summary import telemetry_summary

    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = pathlib.Path(tmp)
        jsonl = _time_export(
            lambda: JsonlWriter(tmp_path / "bench.jsonl"), events, chunk)
        columnar = _time_export(
            lambda: ColumnarWriter(tmp_path / "bench.npz"), events, chunk)

    replay_sim, _ = _telemetry_chain(TELEMETRY_SUMMARY_EVENTS, "head", False)
    stream_sim, aggregator = _telemetry_chain(
        TELEMETRY_SUMMARY_EVENTS, "stream", True)
    replay_summary = telemetry_summary(replay_sim,
                                       user_sources=("bench-user",))
    stream_summary = telemetry_summary(stream_sim, stream=aggregator)
    summary_identical = (
        json.dumps(replay_summary, sort_keys=True, default=repr)
        == json.dumps(stream_summary, sort_keys=True, default=repr))
    stream_stored_records = len(stream_sim.tracer.records)
    stream_stored_spans = len(stream_sim.tracer.spans)

    replay_peak = _peak_memory(
        lambda: _telemetry_chain(TELEMETRY_MEMORY_EVENTS, "head", False))
    stream_peak = _peak_memory(
        lambda: _telemetry_chain(TELEMETRY_MEMORY_EVENTS, "stream", True))

    return {
        "name": "telemetry",
        "events": events,
        "spans": events // TELEMETRY_SPAN_EVERY,
        "jsonl_wall_s": jsonl["wall_s"],
        "columnar_wall_s": columnar["wall_s"],
        "write_speedup": (jsonl["wall_s"] / columnar["wall_s"]
                          if columnar["wall_s"] else 0.0),
        "jsonl_bytes": jsonl["bytes"],
        "columnar_bytes": columnar["bytes"],
        "size_ratio": (jsonl["bytes"] / columnar["bytes"]
                       if columnar["bytes"] else 0.0),
        "lines_identical": jsonl["lines"] == columnar["lines"],
        "summary_events": TELEMETRY_SUMMARY_EVENTS,
        "summary_identical": summary_identical,
        "stream_stored_records": stream_stored_records,
        "stream_stored_spans": stream_stored_spans,
        "memory_events": TELEMETRY_MEMORY_EVENTS,
        "replay_peak_bytes": replay_peak,
        "stream_peak_bytes": stream_peak,
        "stream_memory_ratio": (stream_peak / replay_peak
                                if replay_peak else 0.0),
        "events_per_sec_disabled": _events_per_sec(_timer_chain_bound, 3),
        "source": "in-process",
    }


def check_telemetry_regression(current: Dict[str, Any],
                               baseline: Optional[Dict[str, Any]],
                               kernel_baseline: Optional[Dict[str, Any]]
                               = None) -> List[str]:
    """Gate the telemetry benchmark.

    Machine-independent checks always run: streaming summaries must be
    byte-identical to replay, ``stream`` mode must store nothing, the
    columnar file must be :data:`TELEMETRY_MIN_SIZE_RATIO` smaller and
    :data:`TELEMETRY_MIN_WRITE_SPEEDUP` faster to write than JSONL, and
    streaming peak memory must stay under
    :data:`TELEMETRY_MAX_MEMORY_RATIO` of replay.  The tracing-disabled
    kernel path is gated within :data:`TRACE_DISABLED_TOLERANCE` of the
    committed *kernel* baseline (the PR 2 contract); a like-sourced
    telemetry baseline additionally floors the size ratio, which is
    near-deterministic for the fixed synthetic workload.
    """
    failures = []
    if not current.get("summary_identical", False):
        failures.append(
            "summary_identical: the streaming aggregator's summary "
            "diverged from the record-replay summary")
    if current.get("stream_stored_records") or \
            current.get("stream_stored_spans"):
        failures.append(
            f"stream mode retained state: "
            f"{current.get('stream_stored_records')} records / "
            f"{current.get('stream_stored_spans')} spans stored — the "
            f"tracer must hold nothing in stream mode")
    size_ratio = current.get("size_ratio") or 0.0
    if size_ratio < TELEMETRY_MIN_SIZE_RATIO:
        failures.append(
            f"size_ratio: columnar is only {size_ratio:.1f}x smaller than "
            f"JSONL, below the {TELEMETRY_MIN_SIZE_RATIO:.0f}x floor")
    speedup = current.get("write_speedup") or 0.0
    if speedup < TELEMETRY_MIN_WRITE_SPEEDUP:
        failures.append(
            f"write_speedup: columnar export is only {speedup:.1f}x faster "
            f"than JSONL, below the {TELEMETRY_MIN_WRITE_SPEEDUP:.0f}x floor")
    if not current.get("lines_identical", False):
        failures.append(
            "lines_identical: the two exporters wrote different logical "
            "line counts for the same workload")
    memory_ratio = current.get("stream_memory_ratio")
    if memory_ratio is None or memory_ratio > TELEMETRY_MAX_MEMORY_RATIO:
        failures.append(
            f"stream_memory_ratio: {memory_ratio} above the "
            f"{TELEMETRY_MAX_MEMORY_RATIO:.2f} ceiling — streaming "
            f"aggregation is no longer bounded-memory")
    disabled = current.get("events_per_sec_disabled") or 0.0
    if kernel_baseline is not None and \
            kernel_baseline.get("source") == current.get("source") and \
            kernel_baseline.get("events_per_sec"):
        floor = kernel_baseline["events_per_sec"] * \
            (1.0 - TRACE_DISABLED_TOLERANCE)
        if disabled < floor:
            failures.append(
                f"events_per_sec_disabled: {disabled:,.0f} is more than "
                f"{TRACE_DISABLED_TOLERANCE:.0%} below the committed kernel "
                f"baseline {kernel_baseline['events_per_sec']:,.0f} "
                f"(floor {floor:,.0f}) — telemetry hooks must stay free "
                f"when unused")
    if baseline is not None and \
            baseline.get("source") == current.get("source"):
        base_ratio = baseline.get("size_ratio")
        if base_ratio:
            floor = base_ratio * 0.9
            if size_ratio < floor:
                failures.append(
                    f"size_ratio: {size_ratio:.1f}x is below 90% of the "
                    f"committed baseline {base_ratio:.1f}x "
                    f"(floor {floor:.1f}x) — the columnar encoding got "
                    f"fatter")
    return failures


# ---------------------------------------------------------------------------
# JSON persistence and the regression gate
# ---------------------------------------------------------------------------

def _environment() -> Dict[str, str]:
    return {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "system": platform.system(),
    }


def write_bench_json(directory: pathlib.Path, payload: Dict[str, Any]) -> pathlib.Path:
    """Write ``BENCH_<name>.json`` under ``directory`` and return the path."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{payload['name']}.json"
    body = dict(payload)
    body["environment"] = _environment()
    path.write_text(json.dumps(body, indent=2, sort_keys=True) + "\n")
    return path


def load_baseline(path: pathlib.Path) -> Optional[Dict[str, Any]]:
    path = pathlib.Path(path)
    if not path.exists():
        return None
    return json.loads(path.read_text())


def check_regression(current: Dict[str, Any],
                     baseline: Optional[Dict[str, Any]],
                     tolerance: float = REGRESSION_TOLERANCE) -> List[str]:
    """Compare kernel throughput against the committed baseline.

    Returns a list of human-readable failures (empty = pass).  A missing
    baseline passes with a warning-free result so fresh clones can bootstrap
    one with ``--update-baseline``.

    The committed baseline should be *conservative* — the slowest
    full-suite figures the reference machine produces, not its best day —
    because shared-box throughput legitimately swings (CPU-frequency
    ramps, host load phases); see docs/performance.md.

    Two uses of ``calibration_ops_per_sec``:

    * the *tolerance* floor below deliberately ignores it — observed host
      noise slows the allocation-heavy kernel loops without slowing pure
      arithmetic, so rescaling the 20% band by it misfires;
    * the *dispatch-core speedup* floor divides both sides by it: the
      committed baseline predates the tuple-entry rewrite, so current
      throughput must be at least :data:`DISPATCH_MIN_SPEEDUP` times the
      baseline after normalising out the machine-speed difference.  This
      is a coarse >=2x claim, not a 20% band, so calibration scaling is
      the right tool: it keeps a 2x-slower shared box from failing a
      genuine 2.6x rewrite, and a 2x-faster box from hiding a regressed
      one.
    """
    if baseline is None:
        return []
    if baseline.get("source") != current.get("source"):
        # In-process timings and pytest-benchmark timings are not directly
        # comparable; gate only like against like.
        return []
    failures = []
    for key in ("events_per_sec", "events_per_sec_public_schedule"):
        base = baseline.get(key)
        now = current.get(key)
        if not base or not now:
            continue
        floor = base * (1.0 - tolerance)
        if now < floor:
            failures.append(
                f"{key}: {now:,.0f} events/sec is more than "
                f"{tolerance:.0%} below the committed baseline "
                f"{base:,.0f} (floor {floor:,.0f})")
    base_eps = baseline.get("events_per_sec")
    base_cal = baseline.get("calibration_ops_per_sec")
    now_eps = current.get("events_per_sec")
    now_cal = current.get("calibration_ops_per_sec")
    if base_eps and base_cal and now_eps and now_cal:
        speedup = (now_eps / now_cal) / (base_eps / base_cal)
        if speedup < DISPATCH_MIN_SPEEDUP:
            failures.append(
                f"dispatch speedup: {speedup:.2f}x calibration-relative "
                f"events/sec vs the committed baseline, below the "
                f"{DISPATCH_MIN_SPEEDUP:.1f}x floor — the dispatch core "
                f"is no longer paying "
                f"(now {now_eps:,.0f} ev/s @ {now_cal:,.0f} cal-ops/s; "
                f"baseline {base_eps:,.0f} @ {base_cal:,.0f})")
    return failures


def kernel_metrics_from_pytest_json(path: pathlib.Path) -> Optional[Dict[str, Any]]:
    """Extract kernel throughput from a ``pytest --benchmark-json`` dump.

    Lets ``make bench`` run the statistics-grade pytest-benchmark suite and
    still flow through the same BENCH_kernel.json + gate plumbing.  Uses the
    ``min`` statistic: on shared/bursty machines the best observed round is
    far more stable than the mean, and a genuine kernel regression moves the
    minimum too.
    """
    data = json.loads(pathlib.Path(path).read_text())
    keys = {
        "test_kernel_event_throughput":
            ("events_per_sec", KERNEL_EVENTS),
        "test_kernel_public_schedule_throughput":
            ("events_per_sec_public_schedule", KERNEL_EVENTS),
        "test_machine_calibration":
            ("calibration_ops_per_sec", CALIBRATION_OPS),
    }
    out: Dict[str, Any] = {}
    for entry in data.get("benchmarks", ()):
        name = entry.get("name", "")
        for test, (key, count) in keys.items():
            if name.startswith(test):
                out[key] = count / entry["stats"]["min"]
    if "events_per_sec" not in out:
        return None
    out.update(name="kernel", events_per_run=KERNEL_EVENTS,
               source="pytest-benchmark")
    # Ingested payloads carry the same backend marker as in-process ones,
    # so BENCH_kernel.json never hides a compiled-backend skip.
    out.update(backend_payload())
    return out


def trace_metrics_from_pytest_json(path: pathlib.Path) -> Optional[Dict[str, Any]]:
    """Extract the tracing-overhead figures from a pytest-benchmark dump.

    The disabled path reuses ``test_kernel_event_throughput`` — with span
    propagation on the run loop, the plain kernel hot path *is* the
    tracing-disabled path.  Ratios are recomputed from the ingested
    numbers so the whole payload stays one source.
    """
    data = json.loads(pathlib.Path(path).read_text())
    keys = {
        "test_kernel_event_throughput": "events_per_sec_disabled",
        "test_trace_records_throughput": "events_per_sec_records",
        "test_trace_spans_throughput": "events_per_sec_spans",
    }
    out: Dict[str, Any] = {}
    for entry in data.get("benchmarks", ()):
        name = entry.get("name", "")
        for test, key in keys.items():
            if name.startswith(test):
                out[key] = KERNEL_EVENTS / entry["stats"]["min"]
    if len(out) < len(keys):
        return None
    disabled = out["events_per_sec_disabled"]
    out["records_overhead_ratio"] = (
        out["events_per_sec_records"] / disabled if disabled else 0.0)
    out["spans_overhead_ratio"] = (
        out["events_per_sec_spans"] / disabled if disabled else 0.0)
    out.update(name="trace", events_per_run=KERNEL_EVENTS,
               source="pytest-benchmark")
    return out
