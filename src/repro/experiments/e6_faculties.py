"""E6 — faculty assumptions inside vs outside the laboratory.

"These expectations are not unreasonable since they describe the
situation found in our laboratory.  A number of these expectations,
however, are unreasonable if the Smart Projector is used outside our
laboratory."

Two tables:

* **static matching** — the "must not be frustrated by" engine applied to
  each platform preset across populations: what fraction of each crowd
  can use the thing at all (language, GUI, administration, storage,
  abort).
* **fault recovery** — the dynamic version: a session is running, the
  infrastructure breaks (adapter wedge / registry outage), and either the
  user's own technical skill or the automated :class:`DiagnosticsAgent`
  has to bring it back.
"""

from __future__ import annotations


import numpy as np

from ..kernel.scheduler import Simulator
from ..resource.matching import match, population_usability
from ..resource.platform import adapter_platform, soc_platform
from ..services.errorsvc import DiagnosticsAgent, FaultInjector, human_repair_model
from ..user.population import casual_population, lab_population, public_population
from .harness import ExperimentResult, experiment
from .workloads import projector_room


@experiment("E6")
def run(population_size: int = 100, seed: int = 10) -> ExperimentResult:
    """Usable fraction of each population per platform design."""
    sim = Simulator(seed=seed, trace=False)
    rng = sim.rng("e6")
    populations = {
        "lab": lab_population(rng, population_size),
        "casual": casual_population(rng, population_size),
        "public": public_population(rng, population_size),
    }
    platforms = {
        "research-adapter": adapter_platform(),
        "commercial-soc": soc_platform(),
    }
    result = ExperimentResult(
        "E6", "platform usability across user populations",
        ["platform", "population", "usable_fraction", "mean_score",
         "dominant_frustration"])
    for platform_name, platform in platforms.items():
        for population_name, users in populations.items():
            reports = [match(platform, u) for u in users]
            worst_aspects = [r.worst().aspect for r in reports if r.worst()]
            dominant = (max(set(worst_aspects), key=worst_aspects.count)
                        if worst_aspects else "none")
            result.add_row(
                platform=platform_name, population=population_name,
                usable_fraction=population_usability(platform, users),
                mean_score=float(np.mean([r.score for r in reports])),
                dominant_frustration=dominant)
    result.notes.append(
        "the research adapter suits the lab and fails the public; the "
        "paper's predicted commercial SOC closes the gap")
    return result


@experiment("E6-accessibility")
def run_accessibility(population_size: int = 60,
                      seed: int = 28) -> ExperimentResult:
    """Accessibility: physical compatibility across age populations.

    The paper lists "internationalization and accessibility issues" among
    the research needed to leave the lab.  The i18n half is E6's language
    dimension; this is the accessibility half: ergonomic compatibility of
    each device's form factor across young/adult/older bodies — the
    physical layer's "must be compatible with" at population scale.
    """
    import numpy as np

    from ..kernel.scheduler import Simulator
    from ..phys.devices import laptop_form, pda_form
    from ..phys.ergonomics import FormFactor, check_compatibility
    from ..user.physiology import sample_bodies

    #: A kiosk-style touch panel designed with accessibility in mind:
    #: large controls, large glyphs, no carrying, no reach requirement.
    accessible_panel = FormFactor("touch-panel", control_size_mm=22.0,
                                  glyph_size_mm=7.0, weight_kg=0.0,
                                  requires_proximity=False, portable=False)
    forms = {"laptop": laptop_form(), "pda": pda_form(),
             "touch-panel": accessible_panel}

    sim = Simulator(seed=seed, trace=False)
    result = ExperimentResult(
        "E6-accessibility", "ergonomic compatibility across age groups",
        ["form_factor", "age_group", "compatible_fraction", "mean_score"])
    for form_name, form in forms.items():
        for age_group in ("young", "adult", "older"):
            bodies = sample_bodies(sim.rng(f"e6a.{form_name}.{age_group}"),
                                   population_size, age_group=age_group)
            reports = [check_compatibility(form, body) for body in bodies]
            result.add_row(
                form_factor=form_name, age_group=age_group,
                compatible_fraction=float(np.mean(
                    [r.compatible for r in reports])),
                mean_score=float(np.mean([r.score for r in reports])))
    result.notes.append(
        "the PDA's 6 mm controls and 1.8 mm glyphs shed older users; the "
        "accessible panel holds every age group — accessibility is a "
        "physical-layer design property, not a software patch")
    return result


def _fault_recovery(kind: str, diagnostics: bool, technical_skill: float,
                    seed: int, horizon: float) -> dict:
    room = projector_room(seed=seed, trace=False, register=False)
    sim = room.sim
    injector = FaultInjector(sim)
    agent = DiagnosticsAgent(sim, injector, enabled=diagnostics,
                             check_interval=2.0, repair_time=5.0)
    if kind == "adapter":
        fault = injector.wedge_adapter(room.adapter)
    else:
        fault = injector.kill_registry(room.registry)
    if not diagnostics:
        human_repair_model(fault, injector, sim, technical_skill)
    sim.run(until=horizon)
    agent.stop()
    return {
        "fault": kind,
        "remedy": ("diagnostics" if diagnostics else
                   f"human(skill={technical_skill:.2f})"),
        "recovered": fault.repaired_at is not None,
        "outage_s": fault.outage if fault.outage is not None else float("inf"),
    }


@experiment("E6-recovery")
def run_recovery(seed: int = 11, horizon: float = 120.0) -> ExperimentResult:
    """Fault recovery: researcher vs casual user vs automated diagnostics."""
    result = ExperimentResult(
        "E6-recovery", "infrastructure fault recovery by remedy",
        ["fault", "remedy", "recovered", "outage_s"])
    for kind in ("adapter", "registry"):
        result.add_row(**_fault_recovery(kind, False, 0.9, seed, horizon))
        result.add_row(**_fault_recovery(kind, False, 0.15, seed, horizon))
        result.add_row(**_fault_recovery(kind, True, 0.15, seed, horizon))
    result.notes.append(
        "a researcher fixes it in ~a minute; a casual user never does; "
        "automated diagnostics fixes it in seconds for everyone")
    return result
