"""E8 — voice control vs the acoustic environment.

"Background noise, that is currently acceptable, may become objectionable
if voice recognition is used in a pervasive computing system ...
Conversely, the use of voice-based devices may be socially inappropriate
in a cramped office environment."

Sweep ambient noise from a quiet office to a machine room and measure the
word error rate of the hypothetical voice-controlled Smart Projector,
plus whether speaking commands is even socially acceptable at that spot.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..env.noise import TYPICAL_LEVELS_DB, AcousticField, NoiseSource
from ..env.world import World
from ..kernel.scheduler import Simulator
from ..phys.human import PhysicalUser, SpeechRecognizer
from ..user.physiology import sample_bodies
from .harness import ExperimentResult, experiment

#: A command vocabulary for the voice-controlled projector.
COMMANDS = ("projector", "on", "off", "next", "previous", "brighter",
            "dimmer", "stop", "start", "volume")


@experiment("E8")
def run(floor_levels_db: Sequence[float] = (35, 45, 55, 65, 75, 85),
        speakers: int = 12, words_per_speaker: int = 40,
        seed: int = 13) -> ExperimentResult:
    """Word error rate and social acceptability vs ambient level."""
    result = ExperimentResult(
        "E8", "voice control vs background noise",
        ["ambient_db", "mean_snr_db", "word_error_rate",
         "command_success", "socially_ok"])
    for floor_db in floor_levels_db:
        sim = Simulator(seed=seed, trace=False)
        world = World(20, 20)
        field = AcousticField(world, floor_db=float(floor_db))
        world.place("console", (10.0, 10.0))
        recognizer = SpeechRecognizer(sim, name=f"floor{floor_db}")
        bodies = sample_bodies(sim.rng("e8.bodies"), speakers)
        rng = sim.rng("e8.words")
        snrs = []
        command_hits = 0
        command_total = 0
        social_votes = []
        for body in bodies:
            user = PhysicalUser(sim, body)
            snr = field.speech_snr_db(body.speech_level_db, "console")
            snrs.append(snr)
            social_votes.append(field.socially_appropriate(
                "console", body.speech_level_db))
            words = [COMMANDS[int(rng.integers(0, len(COMMANDS)))]
                     for _ in range(words_per_speaker)]
            heard = recognizer.recognize(user.speak(words), snr)
            # A "command" is a two-word utterance; it succeeds only if both
            # words survive.
            for i in range(0, len(heard) - 1, 2):
                command_total += 1
                if heard[i] is not None and heard[i + 1] is not None:
                    command_hits += 1
        result.add_row(
            ambient_db=float(floor_db),
            mean_snr_db=float(np.mean(snrs)),
            word_error_rate=recognizer.measured_wer,
            command_success=command_hits / max(1, command_total),
            socially_ok=float(np.mean(social_votes)))
    result.notes.append(
        "WER is near the articulation floor in a quiet office and "
        "collapses once ambient exceeds ~50 dB; in the quietest rooms "
        "speaking commands dominates the soundscape (socially "
        "inappropriate)")
    return result


@experiment("E8-auth")
def run_auth(floor_levels_db: Sequence[float] = (35, 45, 55, 65),
             genuine_trials: int = 200, impostor_trials: int = 200,
             seed: int = 25) -> ExperimentResult:
    """Voice biometric security vs the acoustic environment.

    The paper: "the flow of control in such an application depends on the
    signal received from the user's body."  Noise cannot make an impostor
    sound like you (FAR stays at the design threshold), but it can make
    *you* stop sounding like you (FRR climbs) — so in loud rooms the
    biometric lock mostly locks out its owner.
    """
    from ..services.auth import VoiceprintAuthenticator

    result = ExperimentResult(
        "E8-auth", "voiceprint verification vs background noise",
        ["ambient_db", "frr", "far", "owner_locked_out"])
    for floor_db in floor_levels_db:
        sim = Simulator(seed=seed, trace=False)
        world = World(20, 20)
        field = AcousticField(world, floor_db=float(floor_db))
        world.place("lock", (10.0, 10.0))
        auth = VoiceprintAuthenticator(sim, name=f"lock{floor_db}")
        owner = sample_bodies(sim.rng("e8a.owner"), 1, prefix="owner")[0]
        impostor = sample_bodies(sim.rng("e8a.impostor"), 1,
                                 prefix="impostor")[0]
        auth.enroll(owner)
        owner_user = PhysicalUser(sim, owner)
        impostor_user = PhysicalUser(sim, impostor)
        snr_owner = field.speech_snr_db(owner.speech_level_db, "lock")
        snr_impostor = field.speech_snr_db(impostor.speech_level_db, "lock")
        for _ in range(genuine_trials):
            auth.verify(owner_user.speak(["open"]), owner.name,
                        snr_owner, speaker_profile=owner)
        for _ in range(impostor_trials):
            auth.verify(impostor_user.speak(["open"]), owner.name,
                        snr_impostor, speaker_profile=impostor)
        result.add_row(ambient_db=float(floor_db),
                       frr=auth.measured_frr, far=auth.measured_far,
                       owner_locked_out=auth.measured_frr > 0.5)
    result.notes.append(
        "FAR holds at the design threshold across environments while FRR "
        "climbs with noise — the biometric lock fails closed, against its "
        "owner")
    return result


@experiment("E8-conversation")
def run_conversation(distances_m: Sequence[float] = (1.0, 2.0, 4.0, 8.0),
                     seed: int = 14) -> ExperimentResult:
    """A background conversation near the console: the paper's example of
    a *social* noise source that cannot just be engineered away."""
    result = ExperimentResult(
        "E8-conversation", "background conversation vs voice console",
        ["conversation_distance_m", "ambient_db", "word_error_rate"])
    for distance in distances_m:
        sim = Simulator(seed=seed, trace=False)
        world = World(20, 20)
        field = AcousticField(world, floor_db=38.0)
        world.place("console", (10.0, 10.0))
        field.add_source(NoiseSource("chatter",
                                     TYPICAL_LEVELS_DB["conversation"],
                                     social=True),
                         (10.0 + distance, 10.0))
        recognizer = SpeechRecognizer(sim)
        body = sample_bodies(sim.rng("e8c"), 1)[0]
        user = PhysicalUser(sim, body)
        snr = field.speech_snr_db(body.speech_level_db, "console")
        words = [COMMANDS[i % len(COMMANDS)] for i in range(200)]
        recognizer.recognize(user.speak(words), snr)
        result.add_row(conversation_distance_m=distance,
                       ambient_db=field.level_at("console"),
                       word_error_rate=recognizer.measured_wer)
    return result
