"""Telemetry: JSONL export, per-run summaries, and per-layer reports.

This package is the consumer side of the kernel's tracing and the metrics
registry: :mod:`repro.telemetry.jsonl` streams records/spans/metric
snapshots to disk in a stable line format, :mod:`repro.telemetry.summary`
condenses a finished simulation into a small picklable dict (what parallel
sweeps ship across the fork boundary), and :mod:`repro.telemetry.report`
renders the per-LPC-layer run report the paper's classification story
calls for.
"""

from .jsonl import (
    JsonlWriter,
    read_jsonl,
    span_ancestry_categories,
    span_lines,
    write_run_jsonl,
)
from .report import layer_report
from .summary import telemetry_summary

__all__ = [
    "JsonlWriter",
    "layer_report",
    "read_jsonl",
    "span_ancestry_categories",
    "span_lines",
    "telemetry_summary",
    "write_run_jsonl",
]
