"""Telemetry: JSONL/columnar export, streaming aggregation, and reports.

This package is the consumer side of the kernel's tracing and the metrics
registry: :mod:`repro.telemetry.jsonl` streams records/spans/metric
snapshots to disk in a stable line format,
:mod:`repro.telemetry.columnar` packs the same logical lines into a
dictionary-encoded struct-of-arrays ``.npz`` (Parquet behind the optional
pyarrow extra) for million-event runs, :mod:`repro.telemetry.streaming`
folds live tracer output into bounded-memory aggregates,
:mod:`repro.telemetry.summary` condenses a finished simulation into a
small picklable dict (what parallel sweeps ship across the fork
boundary), and :mod:`repro.telemetry.report` renders the per-LPC-layer
run report the paper's classification story calls for — from either the
stored trace or a streaming aggregator, byte-identically.
"""

from .columnar import (
    ColumnarWriter,
    read_columnar,
    read_telemetry,
    write_run_columnar,
)
from .jsonl import (
    JsonlWriter,
    read_jsonl,
    span_ancestry_categories,
    span_lines,
    write_run_jsonl,
)
from .report import layer_report, layer_report_data
from .streaming import StreamingAggregator, span_duration_histogram
from .summary import aggregate_telemetry, telemetry_summary

__all__ = [
    "ColumnarWriter",
    "JsonlWriter",
    "StreamingAggregator",
    "aggregate_telemetry",
    "layer_report",
    "layer_report_data",
    "read_columnar",
    "read_jsonl",
    "read_telemetry",
    "span_ancestry_categories",
    "span_duration_histogram",
    "span_lines",
    "telemetry_summary",
    "write_run_columnar",
    "write_run_jsonl",
]
