"""Columnar telemetry export: packed struct-of-arrays for million-event runs.

The JSONL exporter (:mod:`repro.telemetry.jsonl`) writes one object per
line — friendly to `jq` and streaming tails, but at 10^6 records the
category/source/message strings are repeated verbatim on every line and
the file balloons.  This module packs the same *logical* lines into a
struct-of-arrays NumPy ``.npz``:

* every string column is **dictionary-encoded** — unique strings live
  once in a shared pool (concatenated UTF-8 bytes + a length array) and
  the column stores integer codes;
* code/id arrays use the **smallest unsigned dtype** that fits (uint8
  when the pool has < 256 entries), times are float64;
* structured ``data`` payloads are serialised to canonical JSON strings
  (sorted keys, ``repr`` fallback — exactly the JSONL rules) and
  dictionary-encoded like any other string, so repetitive payloads cost
  one pool entry.

``read_columnar`` reconstructs the identical logical dicts that
``read_jsonl`` returns (records in emit order, then spans, then metrics
snapshots), so every downstream consumer can take either file.  The same
logical schema is available as an Arrow/Parquet file when ``pyarrow`` is
installed — an optional extra; this repo's environment works without it.

The ``.npz`` container is byte-deterministic: NumPy stamps zip entries
with the fixed DOS epoch, so the same seeded run produces a
byte-identical file — the property the figures pipeline and the cache
rely on for JSONL, preserved here.
"""

from __future__ import annotations

import io
import json
import pathlib
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..kernel.errors import ConfigurationError
from ..kernel.scheduler import Simulator
from ..kernel.trace import Span, TraceRecord

try:  # pragma: no cover - exercised only where pyarrow is installed
    import pyarrow as _pa
    import pyarrow.parquet as _pq
    HAVE_PYARROW = True
except ImportError:  # pragma: no cover - the baked image has no pyarrow
    _pa = None
    _pq = None
    HAVE_PYARROW = False

#: Recognised columnar backends.  ``npz`` is always available; ``parquet``
#: needs the optional ``pyarrow`` extra.
COLUMNAR_BACKENDS: Tuple[str, ...] = ("npz", "parquet")

#: Schema version embedded in every file's ``meta`` block.
SCHEMA_VERSION = 1

#: Sentinel stored in the ``span_parent`` column for root spans.
NO_PARENT = -1


def _default(obj: Any) -> str:
    return repr(obj)


def _dumps(payload: Any) -> str:
    """Canonical JSON — the same rules the JSONL exporter uses."""
    return json.dumps(payload, sort_keys=True, default=_default)


def _smallest_uint(max_value: int) -> Any:
    """The narrowest unsigned dtype that can hold ``max_value``."""
    if max_value < 2 ** 8:
        return np.uint8
    if max_value < 2 ** 16:
        return np.uint16
    if max_value < 2 ** 32:
        return np.uint32
    return np.uint64


def _smallest_int(min_value: int, max_value: int) -> Any:
    """The narrowest signed dtype covering ``[min_value, max_value]``."""
    for dtype in (np.int8, np.int16, np.int32):
        info = np.iinfo(dtype)
        if info.min <= min_value and max_value <= info.max:
            return dtype
    return np.int64


class _StringPool:
    """Interns strings; serialises to concatenated UTF-8 + lengths."""

    def __init__(self) -> None:
        self._index: Dict[str, int] = {}
        self._strings: List[str] = []

    def intern(self, value: str) -> int:
        code = self._index.get(value)
        if code is None:
            code = len(self._strings)
            self._index[value] = code
            self._strings.append(value)
        return code

    def __len__(self) -> int:
        return len(self._strings)

    def arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        encoded = [s.encode("utf-8") for s in self._strings]
        blob = b"".join(encoded)
        pool_bytes = np.frombuffer(blob, dtype=np.uint8).copy()
        max_len = max((len(b) for b in encoded), default=0)
        lengths = np.array([len(b) for b in encoded],
                           dtype=_smallest_uint(max_len))
        return pool_bytes, lengths


def _pool_strings(pool_bytes: np.ndarray, pool_len: np.ndarray) -> List[str]:
    blob = pool_bytes.tobytes()
    strings: List[str] = []
    offset = 0
    for length in pool_len.tolist():
        strings.append(blob[offset:offset + length].decode("utf-8"))
        offset += length
    return strings


class ColumnarWriter:
    """Buffers telemetry lines and packs them into a columnar file.

    Drop-in for :class:`~repro.telemetry.jsonl.JsonlWriter` — same
    ``write_record`` / ``write_span`` / ``write_metrics`` / ``flush`` /
    ``close`` surface and context-manager protocol — but the write is a
    *repack*: rows accumulate in compact column builders (integer codes
    and float arrays, never the record objects) and :meth:`flush`
    rewrites the whole container.  Crash-resilience therefore comes from
    explicit flushes, not per-line appends; the CLI flushes on close.

    Args:
        path: output file (parents created).
        backend: ``"npz"`` (default) or ``"parquet"`` (needs pyarrow).
        metrics: optional metrics registry (anything with ``counter``);
            records ``telemetry.export.<backend>.*`` counters at close.
        compress: zip-deflate the npz (smaller, slower; off by default so
            export speed is bounded by packing, not compression).
    """

    def __init__(self, path: pathlib.Path, backend: str = "npz",
                 metrics: Any = None, compress: bool = False) -> None:
        if backend not in COLUMNAR_BACKENDS:
            raise ConfigurationError(
                f"unknown columnar backend {backend!r}; "
                f"choose from {COLUMNAR_BACKENDS}")
        if backend == "parquet" and not HAVE_PYARROW:
            raise ConfigurationError(
                "columnar backend 'parquet' needs the optional pyarrow "
                "extra, which is not installed — use the 'npz' backend")
        self.path = pathlib.Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.format = backend
        self.compress = compress
        self.lines = 0
        self.bytes = 0
        self.records_written = 0
        self.spans_written = 0
        self._metrics = metrics
        self._accounted = False
        self._closed = False
        self._pool = _StringPool()
        # Payload-dict -> pool-code memo: repetitive trace payloads skip
        # the (dominant) canonical-JSON serialisation entirely.  Bounded
        # so hostile all-unique payloads cannot grow it past the pool.
        self._payload_memo: Dict[Any, int] = {}
        # Records: struct-of-arrays builders (plain floats/ints only).
        self._rec_time: List[float] = []
        self._rec_category: List[int] = []
        self._rec_source: List[int] = []
        self._rec_message: List[int] = []
        self._rec_data: List[int] = []
        # Spans.
        self._span_id: List[int] = []
        self._span_parent: List[int] = []
        self._span_category: List[int] = []
        self._span_source: List[int] = []
        self._span_status: List[int] = []
        self._span_start: List[float] = []
        self._span_end: List[float] = []
        self._span_data: List[int] = []
        # Metrics snapshots (whole snapshot as one canonical JSON string).
        self._met_data: List[int] = []

    #: Cap on distinct payload shapes memoized before falling back to
    #: serialise-every-time (correctness is unaffected either way).
    _PAYLOAD_MEMO_MAX = 1 << 16

    def _intern_payload(self, data: Dict[str, Any]) -> int:
        try:
            # The value's class rides in the key so 1, 1.0 and True (equal
            # and same-hash in Python, different in JSON) never collide.
            key = tuple((k, v.__class__, v) for k, v in sorted(data.items()))
            code = self._payload_memo.get(key)
        except TypeError:
            # Unsortable keys or unhashable values: no memo, just encode.
            return self._pool.intern(_dumps(data))
        if code is None:
            code = self._pool.intern(_dumps(data))
            if len(self._payload_memo) < self._PAYLOAD_MEMO_MAX:
                self._payload_memo[key] = code
        return code

    # ------------------------------------------------------------------
    # Line intake — mirrors JsonlWriter
    # ------------------------------------------------------------------
    def write_record(self, record: TraceRecord) -> None:
        self._rec_time.append(record.time)
        self._rec_category.append(self._pool.intern(record.category))
        self._rec_source.append(self._pool.intern(record.source))
        self._rec_message.append(self._pool.intern(record.message))
        self._rec_data.append(self._intern_payload(record.data))
        self.lines += 1
        self.records_written += 1

    def write_span(self, span: Span) -> None:
        self._span_id.append(span.span_id)
        self._span_parent.append(
            NO_PARENT if span.parent_id is None else span.parent_id)
        self._span_category.append(self._pool.intern(span.category))
        self._span_source.append(self._pool.intern(span.source))
        self._span_status.append(self._pool.intern(span.status))
        self._span_start.append(span.start)
        self._span_end.append(
            float("nan") if span.end is None else span.end)
        self._span_data.append(self._intern_payload(span.data))
        self.lines += 1
        self.spans_written += 1

    def write_metrics(self, snapshot: Dict[str, Any]) -> None:
        self._met_data.append(self._pool.intern(_dumps(snapshot)))
        self.lines += 1

    # ------------------------------------------------------------------
    # Packing
    # ------------------------------------------------------------------
    def _columns(self) -> Dict[str, np.ndarray]:
        pool_bytes, pool_len = self._pool.arrays()
        code_dtype = _smallest_uint(max(len(self._pool) - 1, 0))
        max_span_id = max(self._span_id, default=0)
        parent_min = min(self._span_parent, default=NO_PARENT)
        parent_max = max(self._span_parent, default=0)
        meta = {
            "format": "repro-telemetry-columnar",
            "version": SCHEMA_VERSION,
            "counts": {
                "records": self.records_written,
                "spans": self.spans_written,
                "metrics": len(self._met_data),
            },
        }
        meta_bytes = np.frombuffer(
            _dumps(meta).encode("utf-8"), dtype=np.uint8).copy()
        return {
            "meta": meta_bytes,
            "pool_bytes": pool_bytes,
            "pool_len": pool_len,
            "rec_time": np.array(self._rec_time, dtype=np.float64),
            "rec_category": np.array(self._rec_category, dtype=code_dtype),
            "rec_source": np.array(self._rec_source, dtype=code_dtype),
            "rec_message": np.array(self._rec_message, dtype=code_dtype),
            "rec_data": np.array(self._rec_data, dtype=code_dtype),
            "span_id": np.array(self._span_id,
                                dtype=_smallest_uint(max_span_id)),
            "span_parent": np.array(
                self._span_parent,
                dtype=_smallest_int(parent_min, parent_max)),
            "span_category": np.array(self._span_category, dtype=code_dtype),
            "span_source": np.array(self._span_source, dtype=code_dtype),
            "span_status": np.array(self._span_status, dtype=code_dtype),
            "span_start": np.array(self._span_start, dtype=np.float64),
            "span_end": np.array(self._span_end, dtype=np.float64),
            "span_data": np.array(self._span_data, dtype=code_dtype),
            "met_data": np.array(self._met_data, dtype=code_dtype),
        }

    def _write_npz(self, columns: Dict[str, np.ndarray]) -> None:
        buffer = io.BytesIO()
        if self.compress:
            np.savez_compressed(buffer, **columns)
        else:
            np.savez(buffer, **columns)
        self.path.write_bytes(buffer.getvalue())

    def _write_parquet(self, columns: Dict[str, np.ndarray]) -> None:
        # One unified table, one row per logical line, unused cells null —
        # the same logical schema as the JSONL lines and the npz arrays.
        strings = _pool_strings(columns["pool_bytes"], columns["pool_len"])
        rows: Dict[str, List[Any]] = {
            "type": [], "time": [], "category": [], "source": [],
            "message": [], "data": [], "span_id": [], "parent_id": [],
            "start": [], "end": [], "status": [],
        }
        for i in range(len(columns["rec_time"])):
            rows["type"].append("record")
            rows["time"].append(float(columns["rec_time"][i]))
            rows["category"].append(strings[int(columns["rec_category"][i])])
            rows["source"].append(strings[int(columns["rec_source"][i])])
            rows["message"].append(strings[int(columns["rec_message"][i])])
            rows["data"].append(strings[int(columns["rec_data"][i])])
            rows["span_id"].append(None)
            rows["parent_id"].append(None)
            rows["start"].append(None)
            rows["end"].append(None)
            rows["status"].append(None)
        for i in range(len(columns["span_id"])):
            parent = int(columns["span_parent"][i])
            end = float(columns["span_end"][i])
            rows["type"].append("span")
            rows["time"].append(None)
            rows["category"].append(strings[int(columns["span_category"][i])])
            rows["source"].append(strings[int(columns["span_source"][i])])
            rows["message"].append(None)
            rows["data"].append(strings[int(columns["span_data"][i])])
            rows["span_id"].append(int(columns["span_id"][i]))
            rows["parent_id"].append(None if parent == NO_PARENT else parent)
            rows["start"].append(float(columns["span_start"][i]))
            rows["end"].append(None if np.isnan(end) else end)
            rows["status"].append(strings[int(columns["span_status"][i])])
        for code in columns["met_data"].tolist():
            rows["type"].append("metrics")
            for key in ("time", "category", "source", "message", "span_id",
                        "parent_id", "start", "end", "status"):
                rows[key].append(None)
            rows["data"].append(strings[int(code)])
        table = _pa.table(rows)
        table = table.replace_schema_metadata(
            {"repro_meta": columns["meta"].tobytes().decode("utf-8")})
        _pq.write_table(table, self.path)

    def flush(self) -> None:
        """Repack every buffered line and rewrite the container."""
        if self._closed:
            return
        columns = self._columns()
        if self.format == "parquet":
            self._write_parquet(columns)
        else:
            self._write_npz(columns)
        self.bytes = self.path.stat().st_size

    def close(self) -> None:
        if not self._closed:
            self.flush()
            self._closed = True
        self._account()

    def _account(self) -> None:
        if self._metrics is None or self._accounted:
            return
        self._accounted = True
        prefix = f"telemetry.export.{self.format}"
        self._metrics.counter(f"{prefix}.records").add(self.records_written)
        self._metrics.counter(f"{prefix}.spans").add(self.spans_written)
        self._metrics.counter(f"{prefix}.bytes").add(self.bytes)

    def __enter__(self) -> "ColumnarWriter":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def write_run_columnar(path: pathlib.Path, sim: Simulator,
                       prefix: str = "",
                       include_metrics: bool = True,
                       backend: Optional[str] = None,
                       compress: bool = False,
                       account: bool = False) -> Dict[str, int]:
    """Export a finished run's stored telemetry to a columnar ``path``.

    The columnar twin of
    :func:`~repro.telemetry.jsonl.write_run_jsonl`: same filtering by
    category ``prefix``, same trailing metrics snapshot, same counts
    dict, same opt-in ``account`` semantics for the
    ``telemetry.export.*`` counters.  ``backend`` defaults by suffix
    (``.parquet`` selects parquet, anything else npz).
    """
    if backend is None:
        backend = "parquet" if str(path).endswith(".parquet") else "npz"
    counts = {"records": 0, "spans": 0, "metrics": 0}
    registry = sim.metrics if account else None
    with ColumnarWriter(path, backend=backend, metrics=registry,
                        compress=compress) as writer:
        for record in sim.tracer.records:
            if not prefix or record.matches(prefix):
                writer.write_record(record)
                counts["records"] += 1
        for span in sim.tracer.spans:
            if not prefix or span.matches(prefix):
                writer.write_span(span)
                counts["spans"] += 1
        if include_metrics:
            writer.write_metrics(sim.metrics.snapshot())
            counts["metrics"] = 1
    return counts


def _read_npz(path: pathlib.Path) -> List[Dict[str, Any]]:
    with np.load(path) as archive:
        columns = {key: archive[key] for key in archive.files}
    strings = _pool_strings(columns["pool_bytes"], columns["pool_len"])
    lines: List[Dict[str, Any]] = []
    rec_time = columns["rec_time"].tolist()
    rec_category = columns["rec_category"].tolist()
    rec_source = columns["rec_source"].tolist()
    rec_message = columns["rec_message"].tolist()
    rec_data = columns["rec_data"].tolist()
    for i in range(len(rec_time)):
        lines.append({
            "type": "record",
            "time": rec_time[i],
            "category": strings[rec_category[i]],
            "source": strings[rec_source[i]],
            "message": strings[rec_message[i]],
            "data": json.loads(strings[rec_data[i]]),
        })
    span_id = columns["span_id"].tolist()
    span_parent = columns["span_parent"].tolist()
    span_category = columns["span_category"].tolist()
    span_source = columns["span_source"].tolist()
    span_status = columns["span_status"].tolist()
    span_start = columns["span_start"].tolist()
    span_end = columns["span_end"].tolist()
    span_data = columns["span_data"].tolist()
    for i in range(len(span_id)):
        end = span_end[i]
        lines.append({
            "type": "span",
            "span_id": span_id[i],
            "parent_id": None if span_parent[i] == NO_PARENT
            else span_parent[i],
            "category": strings[span_category[i]],
            "source": strings[span_source[i]],
            "start": span_start[i],
            "end": None if np.isnan(end) else end,
            "status": strings[span_status[i]],
            "data": json.loads(strings[span_data[i]]),
        })
    for code in columns["met_data"].tolist():
        lines.append({"type": "metrics", **json.loads(strings[code])})
    return lines


def _read_parquet(path: pathlib.Path) -> List[Dict[str, Any]]:
    # pragma: no cover - needs the optional pyarrow extra
    if not HAVE_PYARROW:
        raise ConfigurationError(
            f"{path}: reading parquet needs the optional pyarrow extra, "
            "which is not installed")
    table = _pq.read_table(path)
    rows = table.to_pylist()
    lines: List[Dict[str, Any]] = []
    for row in rows:
        kind = row["type"]
        if kind == "record":
            lines.append({
                "type": "record",
                "time": row["time"],
                "category": row["category"],
                "source": row["source"],
                "message": row["message"],
                "data": json.loads(row["data"]),
            })
        elif kind == "span":
            lines.append({
                "type": "span",
                "span_id": row["span_id"],
                "parent_id": row["parent_id"],
                "category": row["category"],
                "source": row["source"],
                "start": row["start"],
                "end": row["end"],
                "status": row["status"],
                "data": json.loads(row["data"]),
            })
        else:
            lines.append({"type": "metrics", **json.loads(row["data"])})
    return lines


def read_columnar(path: pathlib.Path) -> List[Dict[str, Any]]:
    """Parse a columnar telemetry file back into logical line dicts.

    Returns the same dicts :func:`~repro.telemetry.jsonl.read_jsonl`
    yields for the equivalent JSONL export — records in emit order, then
    spans, then metrics snapshots — so consumers are format-agnostic.
    """
    path = pathlib.Path(path)
    if str(path).endswith(".parquet"):
        return _read_parquet(path)
    return _read_npz(path)


def read_telemetry(path: pathlib.Path) -> List[Dict[str, Any]]:
    """Format-sniffing reader: JSONL or columnar by file suffix."""
    from .jsonl import read_jsonl
    name = str(path)
    if name.endswith(".npz") or name.endswith(".parquet"):
        return read_columnar(path)
    return read_jsonl(path)
