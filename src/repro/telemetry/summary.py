"""Small, picklable per-run telemetry summaries.

A parallel sweep cannot ship raw traces across the fork boundary — a
dense-room run stores tens of thousands of records, and pickling them
would erase the speedup.  :func:`telemetry_summary` reduces a finished
simulation to a few hundred bytes of plain dict: event totals, trace
volume, issues bucketed by LPC layer, and the final metrics snapshot.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional, Sequence

from ..core.concerns import ConcernClassifier
from ..core.layers import Column
from ..kernel.scheduler import Simulator


def telemetry_summary(sim: Simulator,
                      user_sources: Iterable[str] = (),
                      stream: Optional[Any] = None) -> Dict[str, Any]:
    """Summarise a finished run into a JSON/pickle-friendly dict.

    Closes the metrics registry (still-open latency measurements become
    ``abandoned``) — call this only when the run is over.  Issues that the
    classifier cannot place land under ``"unclassified"`` instead of
    raising: a summary must never kill the sweep that asked for it.

    With ``stream`` set to a
    :class:`~repro.telemetry.streaming.StreamingAggregator` that watched
    the run, the summary comes from the aggregator's incrementally-folded
    state instead of replaying ``tracer.records`` — byte-identical on
    unbounded traced runs, and the only source that works in the
    tracer's ``stream`` mode (``user_sources`` is then the aggregator's
    own, the argument here is ignored).
    """
    if stream is not None:
        return stream.summary(sim)
    tracer = sim.tracer
    classifier = ConcernClassifier()
    users = set(user_sources)
    issues_by_layer: Dict[str, int] = {}
    issues_by_column: Dict[str, int] = {}
    for record in tracer.issues():
        try:
            concern = classifier.from_trace(record, users)
        except Exception:
            issues_by_layer["unclassified"] = \
                issues_by_layer.get("unclassified", 0) + 1
            continue
        layer_name = concern.layer.name.lower()
        issues_by_layer[layer_name] = issues_by_layer.get(layer_name, 0) + 1
        column_name = ("user" if concern.column == Column.USER else "device")
        issues_by_column[column_name] = \
            issues_by_column.get(column_name, 0) + 1
    open_spans = sum(1 for span in tracer.spans if span.end is None)
    return {
        "sim_time": sim.now,
        "events_executed": sim.events_executed,
        "records": len(tracer.records),
        "records_dropped": tracer.dropped,
        "spans": len(tracer.spans),
        "spans_open": open_spans,
        "issues_by_layer": dict(sorted(issues_by_layer.items())),
        "issues_by_column": dict(sorted(issues_by_column.items())),
        "metrics": sim.metrics.close(),
    }


def _merge_counts(target: Dict[str, float],
                  source: Dict[str, float]) -> None:
    for name, value in source.items():
        target[name] = target.get(name, 0) + value


def aggregate_telemetry(summaries: Sequence[Dict[str, Any]],
                        ) -> Dict[str, Any]:
    """Collapse several :func:`telemetry_summary` dicts into one.

    Used by ``averaged_over_seeds`` so a seed-averaged result still
    carries layer/issue telemetry.  Aggregation is by *sum* — simulated
    time, event totals, trace volume, per-layer issue counts and metric
    counters all add across replicates — with ``replicates`` recording
    how many summaries were merged.  Gauges, latencies and probes are
    per-run shapes with no sound cross-seed sum, so the aggregate keeps
    only the counters section of ``metrics``.
    """
    totals = {"sim_time": 0.0, "events_executed": 0, "records": 0,
              "records_dropped": 0, "spans": 0, "spans_open": 0}
    issues_by_layer: Dict[str, float] = {}
    issues_by_column: Dict[str, float] = {}
    counters: Dict[str, float] = {}
    for summary in summaries:
        for name in totals:
            totals[name] += summary.get(name, 0)
        _merge_counts(issues_by_layer, summary.get("issues_by_layer", {}))
        _merge_counts(issues_by_column, summary.get("issues_by_column", {}))
        metrics = summary.get("metrics") or {}
        _merge_counts(counters, metrics.get("counters", {}))
    out: Dict[str, Any] = {"replicates": len(summaries)}
    out.update(totals)
    out["issues_by_layer"] = dict(sorted(issues_by_layer.items()))
    out["issues_by_column"] = dict(sorted(issues_by_column.items()))
    out["metrics"] = {"counters": dict(sorted(counters.items()))}
    return out
