"""Per-LPC-layer run reports.

The paper positions the LPC model as a tool for "properly classifying
issues raised during discussion"; :func:`layer_report` does exactly that
for a *live* run: every ``issue.*`` record is routed through the existing
:class:`~repro.core.concerns.ConcernClassifier` and tallied into the
five-layer, two-column grid of Figure 1, followed by the health signals
the metrics registry collected.

The report accepts two sources and renders byte-identically from either:
a finished :class:`~repro.kernel.scheduler.Simulator` (the classic
record-replay path) or a
:class:`~repro.telemetry.streaming.StreamingAggregator` that folded the
run incrementally — which is the only option when the tracer ran in
``stream`` mode and stored nothing.

Output is deterministic: same seed, same report, byte for byte — counts
come from the trace, ordering from the model's own layer enumeration and
sorted metric names.  :func:`layer_report_data` exposes the same grid as
a machine-readable dict for ``repro.cli report --format json``.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Tuple, Union

from ..core.concerns import ConcernClassifier
from ..core.layers import DEVICE_SIDE, USER_SIDE, Column, Layer, layers_top_down
from ..kernel.scheduler import Simulator

#: Anything layer_report can render: a finished simulator (replay) or a
#: StreamingAggregator (duck-typed on ``layer_counts`` to keep this
#: module import-light).
ReportSource = Union[Simulator, Any]


def _classify_issues(sim: Simulator, user_sources: Iterable[str],
                     ) -> Tuple[Dict[Tuple[Layer, Column], int], int]:
    classifier = ConcernClassifier()
    users = set(user_sources)
    counts: Dict[Tuple[Layer, Column], int] = {}
    unclassified = 0
    for record in sim.tracer.issues():
        try:
            concern = classifier.from_trace(record, users)
        except Exception:
            unclassified += 1
            continue
        column = (Column.USER if concern.column == Column.USER
                  else Column.DEVICE)
        key = (concern.layer, column)
        counts[key] = counts.get(key, 0) + 1
    return counts, unclassified


def _source_stats(source: ReportSource, user_sources: Iterable[str],
                  ) -> Dict[str, Any]:
    """Normalise either source into the numbers the report renders.

    A StreamingAggregator is recognised by its ``layer_counts`` method;
    everything else is treated as a simulator and replayed.
    """
    if hasattr(source, "layer_counts"):
        sim = source.sim
        counts, unclassified = source.layer_counts()
        return {
            "sim": sim,
            "counts": counts,
            "unclassified": unclassified,
            "records": source.records_seen,
            "dropped": sim.tracer.dropped,
            "spans": source.spans_begun,
            "spans_open": source.spans_open,
        }
    counts, unclassified = _classify_issues(source, user_sources)
    tracer = source.tracer
    return {
        "sim": source,
        "counts": counts,
        "unclassified": unclassified,
        "records": len(tracer.records),
        "dropped": tracer.dropped,
        "spans": len(tracer.spans),
        "spans_open": sum(1 for span in tracer.spans if span.end is None),
    }


def layer_report(source: ReportSource, user_sources: Iterable[str] = (),
                 title: str = "LPC run report") -> str:
    """Render the per-layer issue grid plus metrics for a finished run."""
    stats = _source_stats(source, user_sources)
    sim = stats["sim"]
    counts = stats["counts"]

    lines = [title, "=" * len(title), ""]
    lines.append(f"simulated time  : {sim.now:.2f} s")
    lines.append(f"events executed : {sim.events_executed}")
    lines.append(f"trace records   : {stats['records']} "
                 f"({stats['dropped']} dropped)")
    lines.append(f"spans           : {stats['spans']} "
                 f"({stats['spans_open']} open)")
    lines.append("")

    header = (f"{'layer':<12} {'device artifact':<28} {'issues':>6}   "
              f"{'user artifact':<20} {'issues':>6}")
    lines.append(header)
    lines.append("-" * len(header))
    device_total = 0
    user_total = 0
    for layer in layers_top_down():
        device_count = counts.get((layer, Column.DEVICE), 0)
        user_count = counts.get((layer, Column.USER), 0)
        device_total += device_count
        user_total += user_count
        lines.append(
            f"{layer.title:<12} {DEVICE_SIDE[layer]:<28} {device_count:>6}   "
            f"{USER_SIDE[layer]:<20} {user_count:>6}")
    lines.append("-" * len(header))
    lines.append(
        f"{'total':<12} {'':<28} {device_total:>6}   {'':<20} {user_total:>6}")
    if stats["unclassified"]:
        lines.append(f"unclassified issues: {stats['unclassified']}")
    lines.append("")

    snapshot = sim.metrics.snapshot()
    if snapshot["counters"]:
        lines.append("counters")
        lines.append("--------")
        for name, value in snapshot["counters"].items():
            lines.append(f"  {name:<32} {value:g}")
        lines.append("")
    if snapshot["gauges"]:
        lines.append("gauges")
        lines.append("------")
        for name, gauge in snapshot["gauges"].items():
            lines.append(f"  {name:<32} now={gauge['value']:g} "
                         f"avg={gauge['time_average']:.3f} "
                         f"peak={gauge['peak']:g}")
        lines.append("")
    if snapshot["latencies"]:
        lines.append("latencies")
        lines.append("---------")
        for name, latency in snapshot["latencies"].items():
            lines.append(
                f"  {name:<32} n={latency['n']} "
                f"mean={latency['mean']:.4f}s p95={latency['p95']:.4f}s "
                f"abandoned={latency['abandoned']}")
        lines.append("")
    return "\n".join(lines).rstrip("\n") + "\n"


def layer_report_data(source: ReportSource,
                      user_sources: Iterable[str] = (),
                      title: str = "LPC run report") -> Dict[str, Any]:
    """The layer grid as a machine-readable dict (for ``--format json``).

    Layers keep the model's top-down order; every leaf is a JSON type,
    so ``json.dumps(..., sort_keys=True)`` is byte-stable across runs of
    the same seed.
    """
    stats = _source_stats(source, user_sources)
    sim = stats["sim"]
    counts = stats["counts"]
    layers = []
    device_total = 0
    user_total = 0
    for layer in layers_top_down():
        device_count = counts.get((layer, Column.DEVICE), 0)
        user_count = counts.get((layer, Column.USER), 0)
        device_total += device_count
        user_total += user_count
        layers.append({
            "layer": layer.name.lower(),
            "device_artifact": DEVICE_SIDE[layer],
            "device_issues": device_count,
            "user_artifact": USER_SIDE[layer],
            "user_issues": user_count,
        })
    return {
        "title": title,
        "sim_time": sim.now,
        "events_executed": sim.events_executed,
        "records": stats["records"],
        "records_dropped": stats["dropped"],
        "spans": stats["spans"],
        "spans_open": stats["spans_open"],
        "layers": layers,
        "totals": {"device": device_total, "user": user_total},
        "unclassified_issues": stats["unclassified"],
        "metrics": sim.metrics.snapshot(),
    }
