"""Per-LPC-layer run reports.

The paper positions the LPC model as a tool for "properly classifying
issues raised during discussion"; :func:`layer_report` does exactly that
for a *live* run: every ``issue.*`` record is routed through the existing
:class:`~repro.core.concerns.ConcernClassifier` and tallied into the
five-layer, two-column grid of Figure 1, followed by the health signals
the metrics registry collected.

Output is deterministic: same seed, same report, byte for byte — counts
come from the trace, ordering from the model's own layer enumeration and
sorted metric names.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from ..core.concerns import ConcernClassifier
from ..core.layers import DEVICE_SIDE, USER_SIDE, Column, Layer, layers_top_down
from ..kernel.scheduler import Simulator


def _classify_issues(sim: Simulator, user_sources: Iterable[str],
                     ) -> Tuple[Dict[Tuple[Layer, Column], int], int]:
    classifier = ConcernClassifier()
    users = set(user_sources)
    counts: Dict[Tuple[Layer, Column], int] = {}
    unclassified = 0
    for record in sim.tracer.issues():
        try:
            concern = classifier.from_trace(record, users)
        except Exception:
            unclassified += 1
            continue
        column = (Column.USER if concern.column == Column.USER
                  else Column.DEVICE)
        key = (concern.layer, column)
        counts[key] = counts.get(key, 0) + 1
    return counts, unclassified


def layer_report(sim: Simulator, user_sources: Iterable[str] = (),
                 title: str = "LPC run report") -> str:
    """Render the per-layer issue grid plus metrics for a finished run."""
    counts, unclassified = _classify_issues(sim, user_sources)
    tracer = sim.tracer
    open_spans = sum(1 for span in tracer.spans if span.end is None)

    lines = [title, "=" * len(title), ""]
    lines.append(f"simulated time  : {sim.now:.2f} s")
    lines.append(f"events executed : {sim.events_executed}")
    lines.append(f"trace records   : {len(tracer.records)} "
                 f"({tracer.dropped} dropped)")
    lines.append(f"spans           : {len(tracer.spans)} "
                 f"({open_spans} open)")
    lines.append("")

    header = (f"{'layer':<12} {'device artifact':<28} {'issues':>6}   "
              f"{'user artifact':<20} {'issues':>6}")
    lines.append(header)
    lines.append("-" * len(header))
    device_total = 0
    user_total = 0
    for layer in layers_top_down():
        device_count = counts.get((layer, Column.DEVICE), 0)
        user_count = counts.get((layer, Column.USER), 0)
        device_total += device_count
        user_total += user_count
        lines.append(
            f"{layer.title:<12} {DEVICE_SIDE[layer]:<28} {device_count:>6}   "
            f"{USER_SIDE[layer]:<20} {user_count:>6}")
    lines.append("-" * len(header))
    lines.append(
        f"{'total':<12} {'':<28} {device_total:>6}   {'':<20} {user_total:>6}")
    if unclassified:
        lines.append(f"unclassified issues: {unclassified}")
    lines.append("")

    snapshot = sim.metrics.snapshot()
    if snapshot["counters"]:
        lines.append("counters")
        lines.append("--------")
        for name, value in snapshot["counters"].items():
            lines.append(f"  {name:<32} {value:g}")
        lines.append("")
    if snapshot["gauges"]:
        lines.append("gauges")
        lines.append("------")
        for name, gauge in snapshot["gauges"].items():
            lines.append(f"  {name:<32} now={gauge['value']:g} "
                         f"avg={gauge['time_average']:.3f} "
                         f"peak={gauge['peak']:g}")
        lines.append("")
    if snapshot["latencies"]:
        lines.append("latencies")
        lines.append("---------")
        for name, latency in snapshot["latencies"].items():
            lines.append(
                f"  {name:<32} n={latency['n']} "
                f"mean={latency['mean']:.4f}s p95={latency['p95']:.4f}s "
                f"abandoned={latency['abandoned']}")
        lines.append("")
    return "\n".join(lines).rstrip("\n") + "\n"
