"""JSONL export of trace records, causal spans, and metric snapshots.

One JSON object per line, every object carrying a ``type`` discriminator:

* ``{"type": "record", "time": ..., "category": ..., "source": ...,
  "message": ..., "data": {...}}``
* ``{"type": "span", "span_id": ..., "parent_id": ..., "category": ...,
  "source": ..., "start": ..., "end": ..., "status": ..., "data": {...}}``
* ``{"type": "metrics", "time": ..., "counters": {...}, "gauges": {...},
  "latencies": {...}, "probes": {...}}``

Keys are sorted and floats are emitted verbatim, so the same seeded run
produces a byte-identical file.  Payload values that are not JSON types
(live objects riding in trace ``data``) degrade to ``repr`` instead of
failing the whole export.

When the writer is handed a metrics registry it records
``telemetry.export.jsonl.{records,spans,bytes}`` counters at close, so
export cost is itself observable in the next snapshot (the exported file
is unaffected — accounting happens after the last line is written).
"""

from __future__ import annotations

import json
import pathlib
import warnings
from typing import Any, Dict, Iterable, List, Optional

from ..kernel.scheduler import Simulator
from ..kernel.trace import Span, TraceRecord


def _default(obj: Any) -> str:
    return repr(obj)


def _dumps(payload: Dict[str, Any]) -> str:
    return json.dumps(payload, sort_keys=True, default=_default)


def record_line(record: TraceRecord) -> Dict[str, Any]:
    return {
        "type": "record",
        "time": record.time,
        "category": record.category,
        "source": record.source,
        "message": record.message,
        "data": record.data,
    }


def span_line(span: Span) -> Dict[str, Any]:
    return {
        "type": "span",
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "category": span.category,
        "source": span.source,
        "start": span.start,
        "end": span.end,
        "status": span.status,
        "data": span.data,
    }


def metrics_line(snapshot: Dict[str, Any]) -> Dict[str, Any]:
    return {"type": "metrics", **snapshot}


class JsonlWriter:
    """Streams telemetry lines to a file; usable as a context manager.

    The writer is what the CLI's ``--trace-out`` plugs into the kernel's
    default-subscriber hooks: records and spans stream out as they happen,
    so even a crashed run leaves a readable file.

    Args:
        path: output file (parent directories are created).
        metrics: optional metrics registry (anything with a
            ``counter(name)`` method); when given, the writer records
            ``telemetry.export.jsonl.*`` counters once at :meth:`close`.
    """

    #: format tag used in the ``telemetry.export.<format>.*`` counters.
    format = "jsonl"

    def __init__(self, path: pathlib.Path, metrics: Any = None) -> None:
        self.path = pathlib.Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("w")
        self.lines = 0
        self.bytes = 0
        self.records_written = 0
        self.spans_written = 0
        self._metrics = metrics
        self._accounted = False

    def _write(self, payload: Dict[str, Any]) -> None:
        line = _dumps(payload) + "\n"
        self._fh.write(line)
        self.lines += 1
        # json.dumps defaults to ensure_ascii, so len(str) == encoded bytes.
        self.bytes += len(line)

    def write_record(self, record: TraceRecord) -> None:
        self._write(record_line(record))
        self.records_written += 1

    def write_span(self, span: Span) -> None:
        self._write(span_line(span))
        self.spans_written += 1

    def write_metrics(self, snapshot: Dict[str, Any]) -> None:
        self._write(metrics_line(snapshot))

    def flush(self) -> None:
        """Push buffered lines to disk without closing the file."""
        if not self._fh.closed:
            self._fh.flush()

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.flush()
            self._fh.close()
        self._account()

    def _account(self) -> None:
        if self._metrics is None or self._accounted:
            return
        self._accounted = True
        prefix = f"telemetry.export.{self.format}"
        self._metrics.counter(f"{prefix}.records").add(self.records_written)
        self._metrics.counter(f"{prefix}.spans").add(self.spans_written)
        self._metrics.counter(f"{prefix}.bytes").add(self.bytes)

    def __enter__(self) -> "JsonlWriter":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def write_run_jsonl(path: pathlib.Path, sim: Simulator,
                    prefix: str = "",
                    include_metrics: bool = True,
                    account: bool = False) -> Dict[str, int]:
    """Export a finished run's stored telemetry to ``path``.

    Records and spans are filtered by category ``prefix`` (empty = all);
    a final metrics snapshot rides along by default.  Returns counts per
    line type.  With ``account=True`` the export cost lands in the
    simulator's ``telemetry.export.jsonl.*`` counters after the snapshot
    line is written — the file never contains them, but a re-export of
    the same sim then would, so accounting is opt-in to keep repeated
    exports byte-identical by default.
    """
    counts = {"records": 0, "spans": 0, "metrics": 0}
    registry = sim.metrics if account else None
    with JsonlWriter(path, metrics=registry) as writer:
        for record in sim.tracer.records:
            if not prefix or record.matches(prefix):
                writer.write_record(record)
                counts["records"] += 1
        for span in sim.tracer.spans:
            if not prefix or span.matches(prefix):
                writer.write_span(span)
                counts["spans"] += 1
        if include_metrics:
            writer.write_metrics(sim.metrics.snapshot())
            counts["metrics"] = 1
    return counts


def read_jsonl(path: pathlib.Path) -> List[Dict[str, Any]]:
    """Parse a telemetry JSONL file back into a list of dicts.

    A malformed *final* line is tolerated with a :class:`RuntimeWarning`
    — the classic artifact of a run that crashed mid-write — while a
    malformed line anywhere else still raises, because that means real
    corruption rather than truncation.
    """
    path = pathlib.Path(path)
    with path.open() as fh:
        entries = [raw.strip() for raw in fh]
    entries = [raw for raw in entries if raw]
    lines: List[Dict[str, Any]] = []
    for index, raw in enumerate(entries):
        try:
            lines.append(json.loads(raw))
        except ValueError:
            if index == len(entries) - 1:
                warnings.warn(
                    f"{path}: discarding truncated final line "
                    f"({len(raw)} bytes) — partial write from an "
                    "interrupted run", RuntimeWarning, stacklevel=2)
                break
            raise
    return lines


def span_lines(lines: Iterable[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Just the span objects from parsed JSONL lines."""
    return [line for line in lines if line.get("type") == "span"]


def span_ancestry_categories(lines: Iterable[Dict[str, Any]],
                             span_id: int) -> List[str]:
    """Category chain from span ``span_id`` up to its root, leaf first.

    Works on parsed JSONL (dicts), so a test or a post-hoc analysis can
    reconstruct causality from the export alone — no live simulator
    needed.
    """
    by_id: Dict[Optional[int], Dict[str, Any]] = {
        line["span_id"]: line for line in span_lines(lines)}
    chain: List[str] = []
    seen = set()
    current = by_id.get(span_id)
    while current is not None and current["span_id"] not in seen:
        seen.add(current["span_id"])
        chain.append(current["category"])
        current = by_id.get(current.get("parent_id"))
    return chain
