"""JSONL export of trace records, causal spans, and metric snapshots.

One JSON object per line, every object carrying a ``type`` discriminator:

* ``{"type": "record", "time": ..., "category": ..., "source": ...,
  "message": ..., "data": {...}}``
* ``{"type": "span", "span_id": ..., "parent_id": ..., "category": ...,
  "source": ..., "start": ..., "end": ..., "status": ..., "data": {...}}``
* ``{"type": "metrics", "time": ..., "counters": {...}, "gauges": {...},
  "latencies": {...}, "probes": {...}}``

Keys are sorted and floats are emitted verbatim, so the same seeded run
produces a byte-identical file.  Payload values that are not JSON types
(live objects riding in trace ``data``) degrade to ``repr`` instead of
failing the whole export.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, Iterable, List, Optional

from ..kernel.scheduler import Simulator
from ..kernel.trace import Span, TraceRecord


def _default(obj: Any) -> str:
    return repr(obj)


def _dumps(payload: Dict[str, Any]) -> str:
    return json.dumps(payload, sort_keys=True, default=_default)


def record_line(record: TraceRecord) -> Dict[str, Any]:
    return {
        "type": "record",
        "time": record.time,
        "category": record.category,
        "source": record.source,
        "message": record.message,
        "data": record.data,
    }


def span_line(span: Span) -> Dict[str, Any]:
    return {
        "type": "span",
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "category": span.category,
        "source": span.source,
        "start": span.start,
        "end": span.end,
        "status": span.status,
        "data": span.data,
    }


def metrics_line(snapshot: Dict[str, Any]) -> Dict[str, Any]:
    return {"type": "metrics", **snapshot}


class JsonlWriter:
    """Streams telemetry lines to a file; usable as a context manager.

    The writer is what the CLI's ``--trace-out`` plugs into the kernel's
    default-subscriber hooks: records and spans stream out as they happen,
    so even a crashed run leaves a readable file.
    """

    def __init__(self, path: pathlib.Path) -> None:
        self.path = pathlib.Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("w")
        self.lines = 0

    def _write(self, payload: Dict[str, Any]) -> None:
        self._fh.write(_dumps(payload) + "\n")
        self.lines += 1

    def write_record(self, record: TraceRecord) -> None:
        self._write(record_line(record))

    def write_span(self, span: Span) -> None:
        self._write(span_line(span))

    def write_metrics(self, snapshot: Dict[str, Any]) -> None:
        self._write(metrics_line(snapshot))

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "JsonlWriter":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def write_run_jsonl(path: pathlib.Path, sim: Simulator,
                    prefix: str = "",
                    include_metrics: bool = True) -> Dict[str, int]:
    """Export a finished run's stored telemetry to ``path``.

    Records and spans are filtered by category ``prefix`` (empty = all);
    a final metrics snapshot rides along by default.  Returns counts per
    line type.
    """
    counts = {"records": 0, "spans": 0, "metrics": 0}
    with JsonlWriter(path) as writer:
        for record in sim.tracer.records:
            if not prefix or record.matches(prefix):
                writer.write_record(record)
                counts["records"] += 1
        for span in sim.tracer.spans:
            if not prefix or span.matches(prefix):
                writer.write_span(span)
                counts["spans"] += 1
        if include_metrics:
            writer.write_metrics(sim.metrics.snapshot())
            counts["metrics"] = 1
    return counts


def read_jsonl(path: pathlib.Path) -> List[Dict[str, Any]]:
    """Parse a telemetry JSONL file back into a list of dicts."""
    lines = []
    with pathlib.Path(path).open() as fh:
        for raw in fh:
            raw = raw.strip()
            if raw:
                lines.append(json.loads(raw))
    return lines


def span_lines(lines: Iterable[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Just the span objects from parsed JSONL lines."""
    return [line for line in lines if line.get("type") == "span"]


def span_ancestry_categories(lines: Iterable[Dict[str, Any]],
                             span_id: int) -> List[str]:
    """Category chain from span ``span_id`` up to its root, leaf first.

    Works on parsed JSONL (dicts), so a test or a post-hoc analysis can
    reconstruct causality from the export alone — no live simulator
    needed.
    """
    by_id: Dict[Optional[int], Dict[str, Any]] = {
        line["span_id"]: line for line in span_lines(lines)}
    chain: List[str] = []
    seen = set()
    current = by_id.get(span_id)
    while current is not None and current["span_id"] not in seen:
        seen.add(current["span_id"])
        chain.append(current["category"])
        current = by_id.get(current.get("parent_id"))
    return chain
