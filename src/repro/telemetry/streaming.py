"""Bounded-memory streaming aggregation of live telemetry.

The replay path (:func:`~repro.telemetry.summary.telemetry_summary`,
:func:`~repro.telemetry.report.layer_report`) walks the tracer's stored
record list after the run.  At the million-event scale the ROADMAP's
distributed shards target, storing that list is the dominant memory cost
— and it is pure waste when all anyone reads afterwards is a handful of
aggregates.

:class:`StreamingAggregator` subscribes to the tracer and folds every
record and span *as it happens* into fixed-size state: LPC issue counts
per layer/column (via the same :class:`~repro.core.concerns
.ConcernClassifier` the replay path uses), record/span totals, and
per-category span-duration histograms over fixed log-spaced buckets.
Memory is O(layers + categories), never O(events) — pair it with the
tracer's ``stream`` mode and a run retains nothing at all.

Equivalence contract (tier-1 tested): on an unbounded traced run,
:meth:`StreamingAggregator.summary` is byte-identical to
``telemetry_summary(sim)`` and feeding the aggregator to
``layer_report`` reproduces the replay report byte for byte.  Bounded
``head``/``ring`` tracers *drop* records from storage but still dispatch
them to subscribers, so there the streaming totals are the more truthful
of the two.
"""

from __future__ import annotations

import bisect
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from ..core.concerns import ConcernClassifier
from ..core.layers import Column, Layer
from ..kernel.scheduler import Simulator
from ..kernel.trace import (Span, TraceRecord, add_default_span_begin_hook,
                            add_default_span_hook, add_default_subscriber)

#: Log-spaced span-duration bucket edges (simulated seconds): a decade per
#: bucket from 1 µs to 1 Ms, with an underflow and an overflow bucket.
DEFAULT_SPAN_EDGES: Tuple[float, ...] = tuple(
    10.0 ** k for k in range(-6, 7))

#: Distinct span categories histogrammed before folding into the overflow
#: key — the bound that keeps aggregator memory fixed on hostile input.
DEFAULT_MAX_CATEGORIES = 64

#: Catch-all histogram key once ``max_categories`` is exhausted.
OVERFLOW_CATEGORY = "__other__"


def _new_histogram(edges: Tuple[float, ...]) -> Dict[str, Any]:
    return {"count": 0, "sum": 0.0, "min": None, "max": None,
            "buckets": [0] * (len(edges) + 1)}


def _fold_duration(hist: Dict[str, Any], edges: Tuple[float, ...],
                   duration: float) -> None:
    hist["count"] += 1
    hist["sum"] += duration
    hist["min"] = (duration if hist["min"] is None
                   else min(hist["min"], duration))
    hist["max"] = (duration if hist["max"] is None
                   else max(hist["max"], duration))
    hist["buckets"][bisect.bisect_right(edges, duration)] += 1


def span_duration_histogram(spans: Iterable[Span],
                            edges: Tuple[float, ...] = DEFAULT_SPAN_EDGES,
                            ) -> Dict[str, Dict[str, Any]]:
    """Replay twin of the streaming histograms: fold stored, *ended* spans.

    Used by the equivalence tests to prove the incremental fold matches a
    post-hoc pass over ``tracer.spans``.
    """
    out: Dict[str, Dict[str, Any]] = {}
    for span in spans:
        if span.end is None:
            continue
        hist = out.get(span.category)
        if hist is None:
            hist = out[span.category] = _new_histogram(edges)
        _fold_duration(hist, edges, span.duration)
    return dict(sorted(out.items()))


class StreamingAggregator:
    """Folds tracer output incrementally; O(1) memory in the event count.

    Args:
        user_sources: component names whose issues land in the *user*
            column (same contract as ``telemetry_summary``).
        edges: span-duration bucket edges (log-spaced by default).
        max_categories: distinct span categories before new ones fold
            into ``"__other__"``.

    Wire-up, in either direction:

    * :meth:`attach` subscribes to an existing simulator's tracer;
    * :meth:`install_default` registers process-default hooks so
      simulators constructed *later* (deep inside an experiment) feed
      the aggregator — then :meth:`bind` the finished sim before
      :meth:`summary`.
    """

    def __init__(self, user_sources: Iterable[str] = (),
                 edges: Tuple[float, ...] = DEFAULT_SPAN_EDGES,
                 max_categories: int = DEFAULT_MAX_CATEGORIES) -> None:
        self._classifier = ConcernClassifier()
        self._users = frozenset(user_sources)
        self._edges = tuple(edges)
        self._max_categories = max_categories
        self.records_seen = 0
        self.issues_seen = 0
        self.spans_begun = 0
        self.spans_ended = 0
        self.unclassified = 0
        self._grid: Dict[Tuple[Layer, Column], int] = {}
        self._issues_by_layer: Dict[str, int] = {}
        self._issues_by_column: Dict[str, int] = {}
        self._histograms: Dict[str, Dict[str, Any]] = {}
        self._sim: Optional[Simulator] = None
        self._removers: List[Callable[[], None]] = []

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, sim: Simulator) -> "StreamingAggregator":
        """Subscribe to ``sim``'s tracer and remember it for summaries."""
        self._sim = sim
        tracer = sim.tracer
        self._removers.append(tracer.subscribe("", self.on_record))
        self._removers.append(tracer.add_span_begin_hook(self.on_span_begin))
        self._removers.append(tracer.add_span_hook(self.on_span_end))
        return self

    def install_default(self) -> Callable[[], None]:
        """Feed every *future* tracer into this aggregator.

        Returns a remover; pair with :meth:`bind` once the run's
        simulator exists so :meth:`summary` can read time/event totals.
        """
        removers = [
            add_default_subscriber("", self.on_record),
            add_default_span_begin_hook(self.on_span_begin),
            add_default_span_hook(self.on_span_end),
        ]
        self._removers.extend(removers)

        def remove() -> None:
            for remover in removers:
                remover()

        return remove

    def bind(self, sim: Simulator) -> "StreamingAggregator":
        """Associate ``sim`` without subscribing (hooks already wired)."""
        self._sim = sim
        return self

    def detach(self) -> None:
        """Undo every subscription this aggregator installed."""
        for remover in self._removers:
            remover()
        self._removers.clear()

    # ------------------------------------------------------------------
    # Fold callbacks (also usable directly as tracer hooks)
    # ------------------------------------------------------------------
    def on_record(self, record: TraceRecord) -> None:
        self.records_seen += 1
        if not record.matches("issue"):
            return
        self.issues_seen += 1
        try:
            concern = self._classifier.from_trace(record, self._users)
        except Exception:
            # Mirror telemetry_summary: an unplaceable issue counts under
            # "unclassified" and must never kill the run that emitted it.
            self.unclassified += 1
            self._issues_by_layer["unclassified"] = \
                self._issues_by_layer.get("unclassified", 0) + 1
            return
        column = (Column.USER if concern.column == Column.USER
                  else Column.DEVICE)
        key = (concern.layer, column)
        self._grid[key] = self._grid.get(key, 0) + 1
        layer_name = concern.layer.name.lower()
        self._issues_by_layer[layer_name] = \
            self._issues_by_layer.get(layer_name, 0) + 1
        column_name = "user" if column == Column.USER else "device"
        self._issues_by_column[column_name] = \
            self._issues_by_column.get(column_name, 0) + 1

    def on_span_begin(self, span: Span) -> None:
        self.spans_begun += 1

    def on_span_end(self, span: Span) -> None:
        self.spans_ended += 1
        category = span.category
        hist = self._histograms.get(category)
        if hist is None:
            if len(self._histograms) >= self._max_categories:
                category = OVERFLOW_CATEGORY
                hist = self._histograms.get(category)
            if hist is None:
                hist = self._histograms[category] = \
                    _new_histogram(self._edges)
        _fold_duration(hist, self._edges, span.end - span.start)

    # ------------------------------------------------------------------
    # Read-out
    # ------------------------------------------------------------------
    @property
    def sim(self) -> Simulator:
        """The attached/bound simulator (raises if never wired)."""
        if self._sim is None:
            raise ValueError(
                "StreamingAggregator has no simulator — attach()/bind() one")
        return self._sim

    @property
    def spans_open(self) -> int:
        return self.spans_begun - self.spans_ended

    def layer_counts(self) -> Tuple[Dict[Tuple[Layer, Column], int], int]:
        """The LPC grid and the unclassified count — the report's input."""
        return dict(self._grid), self.unclassified

    def span_histograms(self) -> Dict[str, Dict[str, Any]]:
        """Per-category duration histograms, categories sorted."""
        return {category: dict(hist, buckets=list(hist["buckets"]))
                for category, hist in sorted(self._histograms.items())}

    def summary(self, sim: Optional[Simulator] = None) -> Dict[str, Any]:
        """The streaming twin of ``telemetry_summary(sim)``.

        Byte-identical on unbounded traced runs (key order included);
        closes the metrics registry, so call it when the run is over.
        """
        if sim is not None:
            self._sim = sim
        if self._sim is None:
            raise ValueError(
                "StreamingAggregator.summary() needs a simulator — "
                "attach()/bind() one first or pass it in")
        sim = self._sim
        return {
            "sim_time": sim.now,
            "events_executed": sim.events_executed,
            "records": self.records_seen,
            "records_dropped": sim.tracer.dropped,
            "spans": self.spans_begun,
            "spans_open": self.spans_open,
            "issues_by_layer": dict(sorted(self._issues_by_layer.items())),
            "issues_by_column": dict(sorted(self._issues_by_column.items())),
            "metrics": sim.metrics.close(),
        }
