"""Module-level call graph for the fork-safety flow rules (``LPC3xx``).

The flow pass needs to answer one whole-program question: *which modules
does a forked worker's interpreter contain, and what do their functions
do to module-level state?*  This module builds that picture from the
same per-file ASTs the determinism pass already parses:

* :class:`ModuleSummary` — one module's fork-safety facts: its dotted
  name, outgoing import edges (module-scope *and* lazy — a worker can
  execute a lazy import at runtime, so both count for reachability),
  every module-scope state binding classified by kind, and per-function
  mutation/read/capture facts.
* :func:`build_graph` — the module-level adjacency (imports plus
  attribute-resolved calls into imported repro modules).
* :func:`reachable_from` — reachability from the fork/worker entry
  points, with a deterministic witness entry per reached module.
* :func:`module_sccs` — strongly-connected components of the graph; the
  incremental runner re-analyzes a changed module's whole SCC region.

Like the determinism linter, the analysis is **syntactic and
conservative on dynamics**: ``importlib`` loading, ``exec``, and
attribute chains it cannot resolve contribute no edges, and the
meta-test keeps ``src/`` clean against exactly this analyser.  The
contract is "the idioms we actually write are caught", not "all Python".
"""

from __future__ import annotations

import ast
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

#: Module-scope entry points whose transitive module closure runs inside
#: a forked worker (or is itself an entry process).  Specs are
#: ``dotted.module:qualname`` — reachability is computed at module
#: granularity (fork inherits whole imported modules, not functions);
#: the qualname documents *why* the module is an entry.  Entries naming
#: modules absent from the analysed tree are ignored, so fixture trees
#: can carry their own entries.
DEFAULT_FORK_ENTRY_POINTS: Tuple[str, ...] = (
    "repro.kernel.shard:_worker_main",        # shard worker loop
    "repro.experiments.sweeps:_init_worker",  # legacy fork-pool init
    "repro.experiments.sweeps:_run_chunk",    # fork-pool chunk runner
    "repro.experiments.sweeps:_run_pickled_chunk",  # shared-pool mapper
    "repro.checks.runner:analyze_file",       # checks runner pool
    "repro.cli:main",                         # CLI entry point
    "repro.__main__:<module>",                # python -m repro
)

#: Kinds a module-scope binding can be classified as.
KIND_MUTABLE = "mutable"      # dict/list/set/deque/... container
KIND_RNG = "rng"              # np.random.Generator / random.Random / ...
KIND_RESOURCE = "resource"    # pool / lock / open file / socket / ...
KIND_OTHER = "other"          # scalars, tuples, classes, sentinels

#: Constructors whose module-scope result is a mutable container (or a
#: stateful iterator — consuming ``itertools.count`` *is* mutation; the
#: historical ``services.sessions._session_seq`` bug was exactly this).
_MUTABLE_FACTORIES = frozenset({
    "list", "dict", "set", "bytearray", "defaultdict", "OrderedDict",
    "Counter", "deque", "count", "cycle", "iter",
})

#: RNG constructors (seeded or not — module scope is the violation).
_RNG_FACTORIES = frozenset({
    "default_rng", "Random", "RandomState", "Generator", "PCG64",
    "Philox", "SFC64", "MT19937",
})

#: Resource factories recognised by their distinctive final name.  Pool,
#: Process executors and Popen are unambiguous under any base; the
#: synchronisation primitives only count when imported from threading or
#: multiprocessing (plain ``Event``/``Lock`` collide with domain
#: classes); ``open`` always counts.
_RESOURCE_ALWAYS = frozenset({
    "Pool", "ProcessPoolExecutor", "ThreadPoolExecutor", "Popen",
})
_RESOURCE_SYNC = frozenset({
    "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore",
    "Event", "Barrier", "Queue", "SimpleQueue", "JoinableQueue",
})
_RESOURCE_MODULES = frozenset({
    "threading", "multiprocessing", "socket", "subprocess",
})

#: Method names that mutate their receiver in place.
_MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault", "pop",
    "popitem", "remove", "discard", "clear", "appendleft", "extendleft",
    "popleft", "sort", "reverse",
})

#: State kinds whose *reads* the flow rules care about (LPC302/LPC303).
_TRACKED_READ_KINDS = frozenset({KIND_MUTABLE, KIND_RNG, KIND_RESOURCE})


@dataclass
class StateVar:
    """One module-scope binding and its classification."""

    name: str
    line: int
    kind: str                     # KIND_MUTABLE / KIND_RNG / ...
    detail: str = ""              # e.g. the constructor name


@dataclass
class FunctionFacts:
    """What one function does to its module's state."""

    qualname: str
    line: int
    # (state name, line, description) — in-place container writes and
    # ``global``-declared rebinds of module-scope names.
    mutations: List[Tuple[str, int, str]] = field(default_factory=list)
    # (state name, line) — loads of mutable/rng/resource module state
    # (not shadowed locally) from this function's body.
    reads: List[Tuple[str, int]] = field(default_factory=list)
    # (state name, line, constructor) — ``global X`` rebind in a body
    # that also constructs an RNG: X captures a non-sim stream.
    rng_captures: List[Tuple[str, int, str]] = field(default_factory=list)
    # (state name, line, constructor) — same for fork-unsafe resources.
    resource_captures: List[Tuple[str, int, str]] = field(
        default_factory=list)

    def interesting(self) -> bool:
        return bool(self.mutations or self.reads or self.rng_captures
                    or self.resource_captures)


@dataclass
class ModuleSummary:
    """The fork-safety-relevant facts of one module."""

    path: str                     # display path (posix, runner-relative)
    module: str                   # dotted name, e.g. "repro.kernel.shard"
    # Candidate dotted targets of import statements (module-scope and
    # lazy alike); resolved against the analysed tree in build_graph.
    imports: List[str] = field(default_factory=list)
    state: Dict[str, StateVar] = field(default_factory=dict)
    functions: List[FunctionFacts] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ModuleSummary":
        summary = cls(path=str(data["path"]), module=str(data["module"]),
                      imports=[str(i) for i in data.get("imports", ())])
        for name, var in dict(data.get("state", {})).items():
            summary.state[str(name)] = StateVar(**var)
        for facts in data.get("functions", ()):
            fn = FunctionFacts(qualname=str(facts["qualname"]),
                               line=int(facts["line"]))
            fn.mutations = [tuple(m) for m in facts.get("mutations", ())]
            fn.reads = [tuple(r) for r in facts.get("reads", ())]
            fn.rng_captures = [tuple(c)
                               for c in facts.get("rng_captures", ())]
            fn.resource_captures = [
                tuple(c) for c in facts.get("resource_captures", ())]
            summary.functions.append(fn)
        return summary


def module_name(rel_parts: Sequence[str]) -> str:
    """Dotted module name for a path relative to the ``repro`` dir.

    ``("kernel", "shard.py")`` -> ``"repro.kernel.shard"``;
    ``("__init__.py",)`` -> ``"repro"``.
    """
    parts = [p[:-3] if p.endswith(".py") else p for p in rel_parts]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(["repro"] + parts)


def _dotted(node: ast.AST) -> Optional[Tuple[str, ...]]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


class _FunctionScanner(ast.NodeVisitor):
    """Collect one function body's state facts.

    Nested function and class definitions are handed back to the
    collector (they get their own scanner and qualname); everything else
    is walked in place.
    """

    def __init__(self, collector: "_ModuleCollector", facts: FunctionFacts,
                 node: ast.AST) -> None:
        self.collector = collector
        self.facts = facts
        self.root = node
        self.globals: Set[str] = set()
        self.locals: Set[str] = set()
        # Deferred ``global X; X = ...`` rebinds: classified at the end
        # as RNG capture / resource capture / plain mutation, depending
        # on what the body constructs.
        self._global_rebinds: List[Tuple[str, int]] = []
        self._constructor_calls: List[str] = []
        self._collect_scope(node)

    # -- scope prepass --------------------------------------------------
    def _collect_scope(self, node: ast.AST) -> None:
        """Params, ``global`` declarations and locally-bound names.

        The walk descends into nested defs too — their bindings leak
        into this scope set, a deliberate over-approximation (a shadowed
        read is a missed read, never a false positive).
        """
        args = node.args
        for arg in (args.posonlyargs + args.args + args.kwonlyargs
                    + ([args.vararg] if args.vararg else [])
                    + ([args.kwarg] if args.kwarg else [])):
            self.locals.add(arg.arg)
        for child in ast.walk(node):
            if child is not node and isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef,
                            ast.ClassDef)):
                self.locals.add(child.name)
            elif isinstance(child, ast.Global):
                self.globals.update(child.names)
            elif isinstance(child, (ast.Assign, ast.AnnAssign,
                                    ast.AugAssign, ast.For, ast.withitem,
                                    ast.ExceptHandler, ast.comprehension)):
                self.locals.update(self._targets(child))
        self.locals -= self.globals

    @classmethod
    def _targets(cls, node: ast.AST) -> List[str]:
        raw: List[ast.AST] = []
        if isinstance(node, ast.Assign):
            raw = list(node.targets)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign, ast.For)):
            raw = [node.target]
        elif isinstance(node, ast.withitem):
            raw = [node.optional_vars] if node.optional_vars else []
        elif isinstance(node, ast.ExceptHandler):
            return [node.name] if node.name else []
        elif isinstance(node, ast.comprehension):
            raw = [node.target]
        names: List[str] = []
        for target in raw:
            cls._bound_names(target, names)
        return names

    @classmethod
    def _bound_names(cls, target: ast.AST, out: List[str]) -> None:
        """Names a target *binds* — ``x[k] = v`` binds nothing, it
        mutates ``x``, so subscript/attribute targets are skipped."""
        if isinstance(target, ast.Name):
            out.append(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                cls._bound_names(element, out)
        elif isinstance(target, ast.Starred):
            cls._bound_names(target.value, out)

    # -- driving --------------------------------------------------------
    def scan(self) -> None:
        for stmt in self.root.body:
            self.visit(stmt)
        state = self.collector.summary.state
        for name, line in self._global_rebinds:
            if name not in state:
                continue
            rng = [c for c in self._constructor_calls
                   if c in _RNG_FACTORIES]
            resource = [c for c in self._constructor_calls
                        if self.collector.is_resource_constructor(c)]
            if rng:
                self.facts.rng_captures.append((name, line, rng[0]))
            elif resource:
                self.facts.resource_captures.append(
                    (name, line, resource[0]))
            else:
                self.facts.mutations.append((name, line, "global rebind"))

    def _is_module_state(self, name: str) -> bool:
        return (name in self.collector.summary.state
                and name not in self.locals)

    def _state_kind(self, name: str) -> str:
        var = self.collector.summary.state.get(name)
        return var.kind if var is not None else KIND_OTHER

    # -- nested scopes --------------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.collector.scan_function(node, parent=self.facts.qualname)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.collector.scan_function(node, parent=self.facts.qualname)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.collector.scan_class(node, parent=self.facts.qualname)

    # -- writes ---------------------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record_write(target, node.lineno)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record_write(node.target, node.lineno)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        target = node.target
        if (isinstance(target, ast.Name) and target.id in self.globals
                and target.id in self.collector.summary.state):
            self.facts.mutations.append(
                (target.id, node.lineno, "augmented global rebind"))
        else:
            self._record_write(target, node.lineno, aug=True)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            if isinstance(target, ast.Subscript):
                root = self._subscript_root(target)
                if root and self._is_module_state(root):
                    self.facts.mutations.append(
                        (root, node.lineno, "del item"))
        self.generic_visit(node)

    # -- calls and reads ------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        chain = _dotted(node.func)
        if chain:
            self._constructor_calls.append(chain[-1])
            if (len(chain) == 2 and chain[1] in _MUTATOR_METHODS
                    and self._is_module_state(chain[0])):
                self.facts.mutations.append(
                    (chain[0], node.lineno, f".{chain[1]}()"))
            elif (chain == ("next",) and node.args
                  and isinstance(node.args[0], ast.Name)
                  and self._is_module_state(node.args[0].id)):
                # next(_module_iterator) advances shared state — the
                # historical _session_seq pattern.
                self.facts.mutations.append(
                    (node.args[0].id, node.lineno, "next()"))
            self.collector.note_call(chain)
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if (isinstance(node.ctx, ast.Load)
                and self._is_module_state(node.id)
                and self._state_kind(node.id) in _TRACKED_READ_KINDS):
            self.facts.reads.append((node.id, node.lineno))

    # -- helpers --------------------------------------------------------
    @staticmethod
    def _subscript_root(node: ast.Subscript) -> Optional[str]:
        base = node.value
        while isinstance(base, ast.Subscript):
            base = base.value
        return base.id if isinstance(base, ast.Name) else None

    def _record_write(self, target: ast.AST, line: int,
                      aug: bool = False) -> None:
        if isinstance(target, ast.Name):
            if (target.id in self.globals
                    and target.id in self.collector.summary.state):
                self._global_rebinds.append((target.id, line))
            return
        if isinstance(target, ast.Subscript):
            root = self._subscript_root(target)
            if root and self._is_module_state(root):
                how = "augmented item write" if aug else "item write"
                self.facts.mutations.append((root, line, how))
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._record_write(element, line, aug=aug)


class _ModuleCollector:
    """Build one :class:`ModuleSummary` from a parsed module."""

    def __init__(self, path: str, name: str,
                 rel_parts: Sequence[str]) -> None:
        self.summary = ModuleSummary(path=path, module=name)
        self._rel_parts = tuple(rel_parts)
        # Local aliases of resource-bearing modules/names, for
        # disambiguating Lock()/Event() style constructors.
        self._resource_mod_aliases: Set[str] = set()
        self._resource_name_aliases: Set[str] = set()
        # Local alias -> dotted repro module, for call-edge resolution.
        self._module_aliases: Dict[str, str] = {}

    # -- constructor classification ------------------------------------
    def is_resource_constructor(self, name: str) -> bool:
        return (name in _RESOURCE_ALWAYS
                or name == "open"
                or (name in _RESOURCE_SYNC
                    and name in self._resource_name_aliases))

    def _classify_value(self, value: ast.AST) -> Tuple[str, str]:
        if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                              ast.DictComp, ast.SetComp)):
            return KIND_MUTABLE, type(value).__name__
        if not isinstance(value, ast.Call):
            return KIND_OTHER, ""
        chain = _dotted(value.func)
        if not chain:
            return KIND_OTHER, ""
        name = chain[-1]
        if name in _MUTABLE_FACTORIES:
            return KIND_MUTABLE, name
        if name in _RNG_FACTORIES:
            return KIND_RNG, name
        if self.is_resource_constructor(name):
            return KIND_RESOURCE, name
        if (len(chain) >= 2 and chain[0] in self._resource_mod_aliases
                and name in (_RESOURCE_SYNC | _RESOURCE_ALWAYS)):
            return KIND_RESOURCE, name
        return KIND_OTHER, name

    # -- module scope ---------------------------------------------------
    def collect(self, tree: ast.Module) -> None:
        # Pass 1: aliases + module-scope state bindings, so function
        # bodies defined above their state (legal in Python) still
        # resolve reads/writes against the full state map.
        for stmt in self._flat_module_statements(tree):
            if isinstance(stmt, (ast.Import, ast.ImportFrom)):
                self._track_aliases(stmt)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    self._bind_state(target, stmt.value, stmt.lineno)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                self._bind_state(stmt.target, stmt.value, stmt.lineno)
        # Pass 2: function/class bodies.
        for stmt in self._flat_module_statements(tree):
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.scan_function(stmt)
            elif isinstance(stmt, ast.ClassDef):
                self.scan_class(stmt)
        # Pass 3: import edges anywhere in the file — lazy imports still
        # pull modules into a forked worker at runtime.
        for node in ast.walk(tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                self._import_edges(node)

    @staticmethod
    def _flat_module_statements(tree: ast.Module):
        """Module statements, descending into module-scope If/Try arms."""
        stack = list(reversed(tree.body))
        while stack:
            stmt = stack.pop()
            yield stmt
            if isinstance(stmt, (ast.If, ast.Try)):
                arms = list(getattr(stmt, "body", ()))
                arms += list(getattr(stmt, "orelse", ()))
                arms += list(getattr(stmt, "finalbody", ()))
                for handler in getattr(stmt, "handlers", ()):
                    arms += list(handler.body)
                stack.extend(reversed(arms))

    def _bind_state(self, target: ast.AST, value: ast.AST,
                    line: int) -> None:
        if not isinstance(target, ast.Name):
            return
        kind, detail = self._classify_value(value)
        existing = self.summary.state.get(target.id)
        if existing is not None and existing.kind != KIND_OTHER:
            return   # keep the first interesting classification
        self.summary.state[target.id] = StateVar(
            name=target.id, line=line, kind=kind, detail=detail)

    # -- imports --------------------------------------------------------
    def _track_aliases(self, node: ast.AST) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                bound = alias.asname or root
                if root in _RESOURCE_MODULES:
                    self._resource_mod_aliases.add(bound)
                if root == "repro":
                    self._module_aliases[bound] = (
                        alias.name if alias.asname else root)
        elif isinstance(node, ast.ImportFrom) and node.module:
            root = node.module.split(".")[0]
            if root in _RESOURCE_MODULES:
                for alias in node.names:
                    if alias.name in _RESOURCE_SYNC | _RESOURCE_ALWAYS:
                        self._resource_name_aliases.add(
                            alias.asname or alias.name)

    def _import_edges(self, node: ast.AST) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "repro" or alias.name.startswith("repro."):
                    self.summary.imports.append(alias.name)
            return
        module = node.module or ""
        if node.level == 0:
            if module == "repro" or module.startswith("repro."):
                for alias in node.names:
                    # "from repro.x import y": y may be a submodule or an
                    # object — record both candidates, build_graph keeps
                    # whichever exists in the analysed tree.
                    self.summary.imports.append(f"{module}.{alias.name}")
                self.summary.imports.append(module)
            return
        # Relative import, resolved against this module's location.
        base = list(self._rel_parts[:-1])
        strip = node.level - 1
        if strip > len(base):
            return
        base = base[:len(base) - strip] if strip else base
        prefix = ".".join(["repro"] + base)
        if module:
            prefix = f"{prefix}.{module}"
        for alias in node.names:
            self.summary.imports.append(f"{prefix}.{alias.name}")
        self.summary.imports.append(prefix)

    # -- functions ------------------------------------------------------
    def scan_function(self, node, parent: str = "") -> None:
        qualname = f"{parent}.{node.name}" if parent else node.name
        facts = FunctionFacts(qualname=qualname, line=node.lineno)
        _FunctionScanner(self, facts, node).scan()
        if facts.interesting():
            self.summary.functions.append(facts)

    def scan_class(self, node: ast.ClassDef, parent: str = "") -> None:
        qualname = f"{parent}.{node.name}" if parent else node.name
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.scan_function(stmt, parent=qualname)
            elif isinstance(stmt, ast.ClassDef):
                self.scan_class(stmt, parent=qualname)

    def note_call(self, chain: Tuple[str, ...]) -> None:
        """Attribute-resolved call into an imported repro module.

        ``alias.fn()`` where ``alias`` was bound by ``import repro.x.y``
        (or ``... as alias``) adds a call edge — this is what "imports +
        attribute-resolved calls" means at module granularity;
        unresolvable dynamic calls contribute nothing.
        """
        target = self._module_aliases.get(chain[0])
        if target:
            self.summary.imports.append(target)


def summarize_module(path: str, rel_parts: Sequence[str],
                     tree: ast.Module) -> ModuleSummary:
    """Fork-safety summary of one parsed module under ``repro/``."""
    collector = _ModuleCollector(path, module_name(rel_parts), rel_parts)
    collector.collect(tree)
    # Deterministic, deduplicated edge list.
    collector.summary.imports = sorted(set(collector.summary.imports))
    return collector.summary


# ---------------------------------------------------------------------------
# Whole-program graph: adjacency, reachability, SCCs
# ---------------------------------------------------------------------------

def build_graph(summaries: Dict[str, ModuleSummary],
                ) -> Dict[str, List[str]]:
    """Module adjacency: resolved import/call edges within the tree.

    Each recorded candidate target resolves to the **longest known
    module prefix** — ``from repro.env import spectrum`` recorded
    ``repro.env.spectrum`` (a module) and ``repro.env`` (its package);
    ``from repro.env.spectrum import overlap_factor`` resolves to
    ``repro.env.spectrum`` because the full candidate names an object.
    """
    known = set(summaries)
    graph: Dict[str, Set[str]] = {name: set() for name in summaries}
    for name, summary in summaries.items():
        for candidate in summary.imports:
            target = _resolve(candidate, known)
            if target and target != name:
                graph[name].add(target)
    return {name: sorted(targets) for name, targets in graph.items()}


def _resolve(candidate: str, known: Set[str]) -> Optional[str]:
    parts = candidate.split(".")
    while parts:
        name = ".".join(parts)
        if name in known:
            return name
        parts.pop()
    return None


def entry_modules(entry_points: Sequence[str],
                  known: Set[str]) -> Dict[str, str]:
    """Map entry module -> its spec, keeping only modules in the tree."""
    out: Dict[str, str] = {}
    for spec in entry_points:
        module = spec.split(":", 1)[0]
        if module in known and module not in out:
            out[module] = spec
    return out


def reachable_from(graph: Dict[str, List[str]],
                   entry_points: Sequence[str],
                   ) -> Dict[str, str]:
    """Modules reachable from the entries, each with a witness spec.

    The witness is the first entry (in the given order) whose closure
    contains the module — deterministic, so finding messages are stable
    across runs and ``--jobs`` values.
    """
    entries = entry_modules(entry_points, set(graph))
    reached: Dict[str, str] = {}
    for module, spec in entries.items():
        stack = [module]
        while stack:
            current = stack.pop()
            if current in reached:
                continue
            reached[current] = spec
            stack.extend(sorted(graph.get(current, ()), reverse=True))
    return reached


def module_sccs(graph: Dict[str, List[str]]) -> Dict[str, int]:
    """Strongly-connected component id per module (iterative Tarjan).

    Ids are assigned in a deterministic order (sorted roots), so two
    runs over the same tree agree on the partition and the incremental
    runner's "re-analyze the changed module's SCC region" is stable.
    """
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    scc_of: Dict[str, int] = {}
    counter = {"index": 0, "scc": 0}

    for root in sorted(graph):
        if root in index:
            continue
        work: List[Tuple[str, int]] = [(root, 0)]
        while work:
            node, edge_i = work[-1]
            if edge_i == 0:
                index[node] = lowlink[node] = counter["index"]
                counter["index"] += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            targets = graph.get(node, ())
            while edge_i < len(targets):
                target = targets[edge_i]
                edge_i += 1
                if target not in index:
                    work[-1] = (node, edge_i)
                    work.append((target, 0))
                    advanced = True
                    break
                if target in on_stack:
                    lowlink[node] = min(lowlink[node], index[target])
            if advanced:
                continue
            work.pop()
            if lowlink[node] == index[node]:
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc_of[member] = counter["scc"]
                    if member == node:
                        break
                counter["scc"] += 1
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return scc_of
