"""Micro-benchmark for the static pass: cold vs warm incremental runs.

Measures a full-tree ``run_checks`` cold (empty incremental cache, every
file parsed) against warm re-runs (all digests match, zero files
re-parsed, only the cheap cross-file passes execute).  The warm path is
the one developers live on — ``repro.cli check`` between edits — so the
gate keeps the incremental machinery actually paying for itself.

Lives in the ``checks`` package (not ``experiments.bench``) because
``experiments`` and ``checks`` share layer rank 7: a sideways import
between them would itself be an LPC201 finding.  ``repro.cli`` (rank 8)
orchestrates both.
"""

from __future__ import annotations

import pathlib
import tempfile
import time
from typing import Any, Dict, Optional, Sequence

from .runner import run_checks

#: Within-run floor: a warm (all-cached) pass must beat the cold pass by
#: at least this factor, or the incremental machinery stopped paying.
CHECKS_MIN_WARM_SPEEDUP = 3.0

#: A like-sourced committed baseline floors the warm speedup at this
#: fraction of its recorded figure (conservative: hosts vary).
CHECKS_BASELINE_SPEEDUP_FRACTION = 0.5


def bench_checks(paths: Optional[Sequence[pathlib.Path]] = None,
                 base: Optional[pathlib.Path] = None,
                 baseline: Optional[pathlib.Path] = None,
                 jobs: int = 4,
                 warm_repeats: int = 3) -> Dict[str, Any]:
    """Time cold vs warm full-tree checks; returns a BENCH payload."""
    paths = list(paths) if paths else [pathlib.Path("src")]
    with tempfile.TemporaryDirectory(prefix="repro-bench-checks-") as td:
        cache = pathlib.Path(td) / "checks_cache.json"

        start = time.perf_counter()
        cold = run_checks(paths, base=base, baseline=baseline, jobs=jobs,
                          incremental_cache=cache)
        cold_wall = time.perf_counter() - start

        warm_wall = float("inf")
        warm = cold
        warm_analyzed = 0
        for _ in range(max(1, warm_repeats)):
            start = time.perf_counter()
            warm = run_checks(paths, base=base, baseline=baseline,
                              jobs=jobs, incremental_cache=cache)
            warm_wall = min(warm_wall, time.perf_counter() - start)
            warm_analyzed = max(warm_analyzed, len(warm.analyzed))

    return {
        "name": "checks",
        "source": "in-process",
        "files": cold.files,
        "jobs": jobs,
        "cold_wall_s": round(cold_wall, 4),
        "warm_wall_s": round(warm_wall, 4),
        "warm_speedup": round(cold_wall / warm_wall, 2) if warm_wall else 0.0,
        "warm_analyzed": warm_analyzed,
        "findings_identical": cold.format_text() == warm.format_text(),
    }


def check_checks_regression(current: Dict[str, Any],
                            baseline: Optional[Dict[str, Any]],
                            ) -> list:
    """Gate the checks benchmark.

    Machine-independent checks always run: warm findings must be
    byte-identical to cold, a warm run must re-parse zero files, and the
    warm speedup must clear :data:`CHECKS_MIN_WARM_SPEEDUP`.  A
    like-sourced committed baseline additionally floors the speedup at
    :data:`CHECKS_BASELINE_SPEEDUP_FRACTION` of its recorded figure.
    """
    failures = []
    if not current.get("findings_identical", False):
        failures.append(
            "findings_identical: warm incremental check diverged from the "
            "cold run — the SCC-region invalidation is unsound")
    analyzed = current.get("warm_analyzed", -1)
    if analyzed != 0:
        failures.append(
            f"warm_analyzed: {analyzed} files re-parsed on an unchanged "
            f"tree — digest keying is unstable")
    speedup = current.get("warm_speedup") or 0.0
    if speedup < CHECKS_MIN_WARM_SPEEDUP:
        failures.append(
            f"warm_speedup: {speedup:.1f}x below the "
            f"{CHECKS_MIN_WARM_SPEEDUP:.0f}x floor — incremental mode is "
            f"no longer paying")
    if baseline is not None and baseline.get("source") == current.get("source"):
        base = baseline.get("warm_speedup")
        if base:
            floor = base * CHECKS_BASELINE_SPEEDUP_FRACTION
            if speedup < floor:
                failures.append(
                    f"warm_speedup: {speedup:.1f}x is below "
                    f"{CHECKS_BASELINE_SPEEDUP_FRACTION:.0%} of the "
                    f"committed baseline {base:.1f}x (floor {floor:.1f}x)")
    return failures
