"""AST determinism linter (rule codes ``LPC1xx``).

The checker is purely syntactic: it tracks which names a module binds to
the interesting stdlib/numpy entry points (``import time``,
``from datetime import datetime``, ``import numpy as np``, ...) and then
flags call sites and iteration contexts that can make two runs of the
same seed diverge.  See :mod:`repro.checks.findings` for the catalogue.

False-negative by design: aliasing through assignment
(``clock = time.time``) and dynamic imports are not chased.  The repo's
meta-test keeps the tree clean against exactly this checker, so the
contract is "the idioms we actually write are caught", not "all Python".
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set, Tuple

# HOT_LOOP registry (LPC109): imported from the kernel (rank 0 — a
# downward import for this rank-7 package) so the checker and the
# dispatch core can never drift apart on which loops are hot or which
# per-event reads are sanctioned.
from ..kernel.dispatch import HOT_LOOP, HOT_LOOP_ALLOWED_ATTRS
from .findings import RULES, Finding

# numpy.random functions that operate on the hidden global RandomState.
_NP_GLOBAL_FNS = frozenset({
    "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "choice", "shuffle", "permutation", "seed", "bytes",
    "normal", "uniform", "exponential", "poisson", "binomial",
    "standard_normal", "get_state", "set_state",
})

# datetime.datetime / datetime.date classmethods that read the wall clock.
_DATETIME_WALL = frozenset({"now", "utcnow", "today"})

# time.* functions that read the wall clock.  perf_counter/monotonic are
# deliberately absent: they are sanctioned for measuring host wall time
# (benchmarks, report timings) that never feeds back into sim outcomes.
_TIME_WALL = frozenset({"time", "time_ns", "localtime", "gmtime",
                        "ctime", "asctime"})

# Order-insensitive consumers: a set expression fed directly to one of
# these is safe, so only the contexts flagged in _check_set_context matter.
_MUTABLE_FACTORIES = frozenset({"list", "dict", "set", "bytearray",
                                "defaultdict", "OrderedDict", "Counter",
                                "deque"})

# Per-shard engine state (LPC108): attributes that hold another shard's
# simulation engine when read off a shard handle.
_SHARD_STATE_ATTRS = frozenset({"sim", "world"})


def _finding(path: str, node: ast.AST, code: str, message: str) -> Finding:
    rule = RULES[code]
    return Finding(path=path, line=getattr(node, "lineno", 1),
                   col=getattr(node, "col_offset", 0), code=code,
                   message=message, severity=rule.severity, hint=rule.hint)


def _dotted(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """``a.b.c`` -> ("a", "b", "c"); None for anything not a name chain."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


class DeterminismVisitor(ast.NodeVisitor):
    """One pass over a module; collects LPC1xx findings."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.findings: List[Finding] = []
        # heapq is the kernel's private ordering primitive (LPC107):
        # only modules under a kernel/ directory may import it.
        self.in_kernel = "kernel" in path.replace("\\", "/").split("/")
        # kernel/shard.py is the shard coordinator (LPC108): the one
        # module allowed to touch per-shard engine state directly.
        self.in_shard_runtime = path.replace(
            "\\", "/").endswith("kernel/shard.py")
        # Names bound by imports, each a set of local aliases.
        self.time_mods: Set[str] = set()        # import time [as t]
        self.datetime_mods: Set[str] = set()    # import datetime [as dt]
        self.datetime_classes: Set[str] = set()  # from datetime import datetime
        self.date_classes: Set[str] = set()     # from datetime import date
        self.numpy_mods: Set[str] = set()       # import numpy [as np]
        self.np_random_mods: Set[str] = set()   # from numpy import random / import numpy.random as r
        self.default_rng_names: Set[str] = set()  # from numpy.random import default_rng
        self.random_classes: Set[str] = set()   # from random import Random
        self.wallclock_names: Set[str] = set()  # from time import time

    # ------------------------------------------------------------------
    # Import tracking (and LPC102)
    # ------------------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            if alias.name == "time":
                self.time_mods.add(bound)
            elif alias.name == "datetime":
                self.datetime_mods.add(bound)
            elif alias.name == "numpy":
                self.numpy_mods.add(bound)
            elif alias.name == "numpy.random":
                if alias.asname:
                    self.np_random_mods.add(alias.asname)
                else:
                    self.numpy_mods.add("numpy")
            elif alias.name == "random" or alias.name.startswith("random."):
                self.findings.append(_finding(
                    self.path, node, "LPC102",
                    "import of the stdlib 'random' module"))
            elif alias.name == "heapq" and not self.in_kernel:
                self.findings.append(_finding(
                    self.path, node, "LPC107",
                    "import of heapq outside the kernel"))
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        if node.level == 0 and module == "heapq" and not self.in_kernel:
            self.findings.append(_finding(
                self.path, node, "LPC107",
                "import from heapq outside the kernel"))
        if node.level == 0 and module == "random":
            self.findings.append(_finding(
                self.path, node, "LPC102",
                "import from the stdlib 'random' module"))
            for alias in node.names:
                if alias.name == "Random":
                    self.random_classes.add(alias.asname or alias.name)
        elif module == "time":
            for alias in node.names:
                if alias.name in _TIME_WALL:
                    self.wallclock_names.add(alias.asname or alias.name)
        elif module == "datetime":
            for alias in node.names:
                if alias.name == "datetime":
                    self.datetime_classes.add(alias.asname or alias.name)
                elif alias.name == "date":
                    self.date_classes.add(alias.asname or alias.name)
        elif module == "numpy":
            for alias in node.names:
                if alias.name == "random":
                    self.np_random_mods.add(alias.asname or alias.name)
        elif module == "numpy.random":
            for alias in node.names:
                if alias.name == "default_rng":
                    self.default_rng_names.add(alias.asname or alias.name)
                elif alias.name in _NP_GLOBAL_FNS:
                    self.findings.append(_finding(
                        self.path, node, "LPC103",
                        f"import of numpy global-state RNG function "
                        f"'{alias.name}'"))
        self.generic_visit(node)

    # ------------------------------------------------------------------
    # Call sites: LPC101, LPC103, LPC105
    # ------------------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        chain = _dotted(node.func)
        if chain is not None:
            self._check_wallclock(node, chain)
            self._check_rng(node, chain)
        self._check_id_sort_key(node, chain)
        self._check_set_context(node)
        self.generic_visit(node)

    def _check_wallclock(self, node: ast.Call,
                         chain: Tuple[str, ...]) -> None:
        name = ".".join(chain)
        if len(chain) == 1 and chain[0] in self.wallclock_names:
            self.findings.append(_finding(
                self.path, node, "LPC101", f"wall-clock call {name}()"))
        elif len(chain) == 2:
            base, attr = chain
            if base in self.time_mods and attr in _TIME_WALL:
                self.findings.append(_finding(
                    self.path, node, "LPC101", f"wall-clock call {name}()"))
            elif (base in self.datetime_classes
                  and attr in _DATETIME_WALL):
                self.findings.append(_finding(
                    self.path, node, "LPC101", f"wall-clock call {name}()"))
            elif base in self.date_classes and attr == "today":
                self.findings.append(_finding(
                    self.path, node, "LPC101", f"wall-clock call {name}()"))
        elif len(chain) == 3:
            base, cls, attr = chain
            if (base in self.datetime_mods and cls in ("datetime", "date")
                    and attr in _DATETIME_WALL):
                self.findings.append(_finding(
                    self.path, node, "LPC101", f"wall-clock call {name}()"))

    def _is_unseeded(self, node: ast.Call) -> bool:
        if node.args:
            first = node.args[0]
            return (isinstance(first, ast.Constant)
                    and first.value is None)
        seed_kw = [kw for kw in node.keywords
                   if kw.arg in ("seed", None)]
        if not seed_kw:
            return True
        kw = seed_kw[0]
        return (kw.arg == "seed" and isinstance(kw.value, ast.Constant)
                and kw.value.value is None)

    def _check_rng(self, node: ast.Call, chain: Tuple[str, ...]) -> None:
        name = ".".join(chain)
        # default_rng()/Random() with no (or None) seed.
        is_default_rng = (
            (len(chain) == 1 and chain[0] in self.default_rng_names)
            or (len(chain) == 2 and chain[0] in self.np_random_mods
                and chain[1] == "default_rng")
            or (len(chain) == 3 and chain[0] in self.numpy_mods
                and chain[1] == "random" and chain[2] == "default_rng"))
        if is_default_rng:
            if self._is_unseeded(node):
                self.findings.append(_finding(
                    self.path, node, "LPC103",
                    f"unseeded RNG construction {name}()"))
            return
        if (len(chain) == 1 and chain[0] in self.random_classes
                and self._is_unseeded(node)):
            self.findings.append(_finding(
                self.path, node, "LPC103",
                f"unseeded RNG construction {name}()"))
            return
        # Legacy numpy global-state functions.
        is_np_global = (
            (len(chain) == 2 and chain[0] in self.np_random_mods
             and chain[1] in _NP_GLOBAL_FNS)
            or (len(chain) == 3 and chain[0] in self.numpy_mods
                and chain[1] == "random" and chain[2] in _NP_GLOBAL_FNS))
        if is_np_global:
            self.findings.append(_finding(
                self.path, node, "LPC103",
                f"numpy global-state RNG call {name}()"))

    # ------------------------------------------------------------------
    # Cross-shard engine state: LPC108
    # ------------------------------------------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        self._check_shard_state(node)
        self.generic_visit(node)

    def _check_shard_state(self, node: ast.Attribute) -> None:
        """Flag ``<shard-ish>.sim`` / ``<shard-ish>.world`` outside the
        shard runtime.

        Purely syntactic, like the rest of this pass: the base must be a
        name (or attribute, possibly subscripted — ``shards[i]``) whose
        identifier mentions "shard".  That is exactly the idiom a
        cross-shard reach-in reads as — a handle to another shard,
        dereferenced down to its engine objects.
        """
        if self.in_shard_runtime or node.attr not in _SHARD_STATE_ATTRS:
            return
        base = node.value
        while isinstance(base, ast.Subscript):
            base = base.value
        if isinstance(base, ast.Name):
            ident = base.id
        elif isinstance(base, ast.Attribute):
            ident = base.attr
        else:
            return
        if "shard" in ident.lower():
            self.findings.append(_finding(
                self.path, node, "LPC108",
                f"direct access to {ident}.{node.attr} — another shard's "
                "engine state"))

    def _check_id_sort_key(self, node: ast.Call,
                           chain: Optional[Tuple[str, ...]]) -> None:
        is_sort = (chain is not None
                   and (chain[-1] == "sorted" or chain[-1] == "sort"))
        if not is_sort:
            return
        for kw in node.keywords:
            if kw.arg != "key":
                continue
            value = kw.value
            if isinstance(value, ast.Name) and value.id == "id":
                self.findings.append(_finding(
                    self.path, node, "LPC105", "sort keyed on id()"))
            elif isinstance(value, ast.Lambda):
                body = value.body
                if (isinstance(body, ast.Call)
                        and isinstance(body.func, ast.Name)
                        and body.func.id == "id"):
                    self.findings.append(_finding(
                        self.path, node, "LPC105",
                        "sort keyed on lambda wrapping id()"))

    # ------------------------------------------------------------------
    # Set-iteration contexts: LPC104
    # ------------------------------------------------------------------
    def _is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("set", "frozenset")
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
            return (self._is_set_expr(node.left)
                    or self._is_set_expr(node.right))
        return False

    def _flag_set_iter(self, node: ast.AST, context: str) -> None:
        if self._is_set_expr(node):
            self.findings.append(_finding(
                self.path, node, "LPC104",
                f"iteration over a set in {context} depends on "
                "PYTHONHASHSEED order"))

    def _check_set_context(self, node: ast.Call) -> None:
        if not (isinstance(node.func, ast.Name) and node.args):
            return
        if node.func.id in ("list", "tuple", "iter", "enumerate"):
            self._flag_set_iter(node.args[0],
                                f"{node.func.id}(...) conversion")

    def visit_For(self, node: ast.For) -> None:
        self._flag_set_iter(node.iter, "a for loop")
        self.generic_visit(node)

    def _visit_comprehension(self, node: ast.AST) -> None:
        for gen in node.generators:
            self._flag_set_iter(gen.iter, "a comprehension")
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_comprehension(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._visit_comprehension(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._visit_comprehension(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        # Building a set from a set keeps the result unordered —
        # consumption is what gets flagged, so don't double-report here.
        self.generic_visit(node)

    # ------------------------------------------------------------------
    # Mutable defaults: LPC106
    # ------------------------------------------------------------------
    def _check_defaults(self, node) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None]
        for default in defaults:
            mutable = isinstance(default, (
                ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                ast.SetComp))
            if not mutable and isinstance(default, ast.Call):
                chain = _dotted(default.func)
                mutable = (chain is not None
                           and chain[-1] in _MUTABLE_FACTORIES)
            if mutable:
                self.findings.append(_finding(
                    self.path, default, "LPC106",
                    f"mutable default argument in {node.name}()"))

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self._check_hot_loop(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    # ------------------------------------------------------------------
    # Hot-loop attribute discipline: LPC109
    # ------------------------------------------------------------------
    def _check_hot_loop(self, node: ast.FunctionDef) -> None:
        """Flag Load-context attribute access inside the ``while``/``for``
        bodies of a :data:`repro.kernel.dispatch.HOT_LOOP` function.

        These loops run once per simulated event, so an attribute walk
        inside them is a per-event cost the dispatch core exists to
        eliminate — state must be hoisted into locals before the loop.
        Attributes in :data:`HOT_LOOP_ALLOWED_ATTRS` are sanctioned:
        they are genuinely per-event reads (a handle's cancellation
        flag, the stop latch, ambient span context).  Stores and
        augmented assignments are not flagged — writing back rare-path
        state is not the lookup tax this rule is about.
        """
        if node.name not in HOT_LOOP:
            return
        seen: Set[int] = set()
        for loop in ast.walk(node):
            if not isinstance(loop, (ast.While, ast.For)):
                continue
            for child in ast.walk(loop):
                if (isinstance(child, ast.Attribute)
                        and isinstance(child.ctx, ast.Load)
                        and child.attr not in HOT_LOOP_ALLOWED_ATTRS
                        and id(child) not in seen):
                    seen.add(id(child))
                    self.findings.append(_finding(
                        self.path, child, "LPC109",
                        f"per-event attribute lookup '.{child.attr}' "
                        f"inside hot loop {node.name}()"))


def check_determinism(path: str, tree: ast.Module) -> List[Finding]:
    """All LPC1xx findings for one parsed module."""
    visitor = DeterminismVisitor(path)
    visitor.visit(tree)
    return visitor.findings


def check_source(path: str, source: str) -> List[Finding]:
    """Parse ``source`` and run the determinism pass (LPC001 on error)."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        rule = RULES["LPC001"]
        return [Finding(path=path, line=exc.lineno or 1,
                        col=exc.offset or 0, code="LPC001",
                        message=f"file does not parse: {exc.msg}",
                        severity=rule.severity, hint=rule.hint)]
    return check_determinism(path, tree)
