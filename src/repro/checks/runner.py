"""Run the full static pass over a file tree, in parallel.

Per-file work (parse + determinism visitor + import extraction + flow
summary) fans out over a fork-based process pool — the same strategy as
the parallel sweep runner — and the cross-file passes (layer check over
the aggregated import edges, fork-safety flow rules over the module call
graph) run afterwards.  Findings are sorted ``(path, line, col, code)``
so serial and parallel runs produce byte-identical reports.

Incremental mode (``incremental_cache=...``) keys on per-file SHA-256
source digests: a warm run re-parses only files whose digest changed,
plus every file in the changed modules' strongly-connected call-graph
region (a changed module can alter what its SCC peers reach).  The
cross-file passes always rerun over the full summary set — they are
cheap relative to parsing — so warm findings equal a cold run exactly.
"""

from __future__ import annotations

import ast
import hashlib
import json
import multiprocessing
import pathlib
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .baseline import Suppression, apply_baseline, load_baseline
from .callgraph import (
    DEFAULT_FORK_ENTRY_POINTS,
    ModuleSummary,
    build_graph,
    module_sccs,
    summarize_module,
)
from .determinism import check_determinism
from .findings import RULES, Finding
from .flow import run_flow
from .layers import (
    ImportEdge,
    ModuleImports,
    check_layers,
    extract_imports,
    import_graph,
)

CACHE_VERSION = 1


@dataclass
class CheckReport:
    """Aggregated result of one static pass."""

    findings: List[Finding]              # unsuppressed (includes stale)
    suppressed: List[Finding] = field(default_factory=list)
    files: int = 0
    graph: Dict[str, List[str]] = field(default_factory=dict)
    # Files re-parsed this run (all of them on a cold run; the changed
    # SCC region on a warm incremental run) and the cache-hit count.
    analyzed: List[str] = field(default_factory=list)
    cached: int = 0
    # Host-time instrumentation (perf_counter seconds): phase totals
    # under "phases", per-flow-rule splits under "rules".  Reported only
    # in to_json() — the text format carries no timings, so its output
    # stays byte-identical across machines.
    timings: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return not self.findings

    def format_text(self) -> str:
        lines = [finding.format() for finding in self.findings]
        lines.append(f"checked {self.files} files: "
                     f"{len(self.findings)} finding(s), "
                     f"{len(self.suppressed)} suppressed")
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps({
            "version": 1,
            "files": self.files,
            "analyzed": len(self.analyzed),
            "cached": self.cached,
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [f.to_dict() for f in self.suppressed],
            "import_graph": self.graph,
            "timings": {
                phase: {name: round(seconds, 6)
                        for name, seconds in sorted(values.items())}
                for phase, values in sorted(self.timings.items())
            },
            "rules": {code: rule.title for code, rule in sorted(RULES.items())},
        }, indent=2)


def discover_files(paths: Sequence[pathlib.Path]) -> List[pathlib.Path]:
    """All ``*.py`` files under ``paths`` (files pass through), sorted."""
    out = []
    for path in paths:
        if path.is_dir():
            out.extend(p for p in path.rglob("*.py"))
        elif path.suffix == ".py":
            out.append(path)
    return sorted(set(out))


def _repro_rel_parts(path: pathlib.Path) -> Optional[Tuple[str, ...]]:
    """Path parts relative to the innermost ``repro`` package dir.

    Files outside a ``repro`` tree get no layer identity (determinism
    rules still apply to them).
    """
    parts = path.parts
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return tuple(parts[i + 1:])
    return None


def _display_path(path: pathlib.Path, base: Optional[pathlib.Path]) -> str:
    if base is not None:
        try:
            return path.resolve().relative_to(base.resolve()).as_posix()
        except ValueError:
            pass
    return path.as_posix()


def source_digest(path: pathlib.Path) -> str:
    """SHA-256 of a file's bytes — the incremental-mode cache key."""
    try:
        return hashlib.sha256(path.read_bytes()).hexdigest()
    except OSError:
        return ""


@dataclass
class FileResult:
    """Everything one file contributes to the pass (picklable)."""

    display: str
    digest: str
    findings: List[Finding] = field(default_factory=list)
    module: Optional[ModuleImports] = None
    summary: Optional[ModuleSummary] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "display": self.display,
            "digest": self.digest,
            "findings": [f.to_dict() for f in self.findings],
            "module": asdict(self.module) if self.module else None,
            "summary": self.summary.to_dict() if self.summary else None,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FileResult":
        result = cls(display=str(data["display"]),
                     digest=str(data["digest"]))
        result.findings = [Finding(**f) for f in data.get("findings", ())]
        module = data.get("module")
        if module:
            result.module = ModuleImports(
                path=str(module["path"]), package=str(module["package"]),
                edges=[ImportEdge(**edge) for edge in module["edges"]])
        summary = data.get("summary")
        if summary:
            result.summary = ModuleSummary.from_dict(summary)
        return result


def analyze_file(path_base: Tuple[str, Optional[str]]) -> FileResult:
    """Parse one file: determinism findings + imports + flow summary."""
    path = pathlib.Path(path_base[0])
    base = pathlib.Path(path_base[1]) if path_base[1] else None
    display = _display_path(path, base)
    result = FileResult(display=display, digest=source_digest(path))
    try:
        source = path.read_text()
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        rule = RULES["LPC001"]
        result.findings = [Finding(path=display, line=exc.lineno or 1,
                                   col=exc.offset or 0, code="LPC001",
                                   message=f"file does not parse: {exc.msg}",
                                   severity=rule.severity, hint=rule.hint)]
        return result
    except OSError as exc:
        rule = RULES["LPC001"]
        result.findings = [Finding(path=display, line=1, col=0,
                                   code="LPC001",
                                   message=f"file is unreadable: {exc}",
                                   severity=rule.severity, hint=rule.hint)]
        return result
    result.findings = check_determinism(display, tree)
    rel_parts = _repro_rel_parts(path)
    if rel_parts:
        result.module = extract_imports(display, rel_parts, tree)
        result.summary = summarize_module(display, rel_parts, tree)
    return result


def _load_cache(cache_path: pathlib.Path,
                base: pathlib.Path) -> Dict[str, FileResult]:
    """Previous per-file results, or empty on any mismatch/corruption."""
    try:
        data = json.loads(cache_path.read_text())
    except (OSError, ValueError):
        return {}
    if (not isinstance(data, dict)
            or data.get("version") != CACHE_VERSION
            or data.get("base") != str(base.resolve())):
        return {}
    cached: Dict[str, FileResult] = {}
    try:
        for display, entry in dict(data.get("files", {})).items():
            cached[str(display)] = FileResult.from_dict(entry)
    except (KeyError, TypeError, ValueError):
        return {}
    return cached


def _write_cache(cache_path: pathlib.Path, base: pathlib.Path,
                 results: Sequence[FileResult]) -> None:
    payload = {
        "version": CACHE_VERSION,
        "base": str(base.resolve()),
        "files": {result.display: result.to_dict() for result in results},
    }
    cache_path.parent.mkdir(parents=True, exist_ok=True)
    cache_path.write_text(json.dumps(payload))


def _stale_region(files: Sequence[Tuple[pathlib.Path, str, str]],
                  cache: Dict[str, FileResult]) -> List[str]:
    """Display paths needing re-analysis: changed files + SCC region.

    The region is computed on the *previous* run's call graph: a changed
    module may alter what its strongly-connected peers reach, so every
    cached module sharing an SCC with a changed module is re-analyzed
    too.  Files unknown to the cache (new) are always stale.
    """
    changed: List[str] = []
    for _path, display, digest in files:
        prior = cache.get(display)
        if prior is None or not digest or prior.digest != digest:
            changed.append(display)
    summaries = {entry.summary.module: entry.summary
                 for entry in cache.values() if entry.summary is not None}
    module_of = {entry.display: entry.summary.module
                 for entry in cache.values() if entry.summary is not None}
    scc_of = module_sccs(build_graph(summaries))
    dirty_sccs = {scc_of[module_of[display]] for display in changed
                  if display in module_of and module_of[display] in scc_of}
    stale = set(changed)
    for display, module in module_of.items():
        if scc_of.get(module) in dirty_sccs:
            stale.add(display)
    current = {display for _path, display, _digest in files}
    return sorted(stale & current)


def run_checks(paths: Sequence[pathlib.Path],
               base: Optional[pathlib.Path] = None,
               baseline: Optional[pathlib.Path] = None,
               jobs: int = 1,
               layer_map: Optional[Dict[str, int]] = None,
               entry_points: Sequence[str] = DEFAULT_FORK_ENTRY_POINTS,
               incremental_cache: Optional[pathlib.Path] = None,
               ) -> CheckReport:
    """The full static pass: determinism + layers + flow + baseline.

    ``base`` anchors finding paths (default: the current directory), so
    the baseline file stays valid wherever the runner is invoked from.
    ``jobs > 1`` forks a process pool for the per-file phase when the
    platform supports fork; results are identical to the serial path.
    ``incremental_cache`` names a JSON cache file: when it exists and
    matches ``base``, only changed files (plus their call-graph SCC
    region) are re-parsed, and it is rewritten with this run's results.
    """
    base = base if base is not None else pathlib.Path.cwd()
    timings: Dict[str, Dict[str, float]] = {"phases": {}, "rules": {}}

    start = time.perf_counter()
    files = [(p, _display_path(p, base), source_digest(p))
             for p in discover_files(paths)]

    cache: Dict[str, FileResult] = {}
    if incremental_cache is not None:
        cache = _load_cache(incremental_cache, base)
    if cache:
        stale = set(_stale_region(files, cache))
    else:
        stale = {display for _path, display, _digest in files}
    work = [(str(path), str(base))
            for path, display, _digest in files if display in stale]
    timings["phases"]["discover"] = time.perf_counter() - start

    start = time.perf_counter()
    fresh: List[FileResult]
    if (jobs > 1 and len(work) > 1
            and "fork" in multiprocessing.get_all_start_methods()):
        context = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(max_workers=jobs,
                                 mp_context=context) as pool:
            fresh = list(pool.map(analyze_file, work, chunksize=8))
    else:
        fresh = [analyze_file(item) for item in work]
    fresh_by_display = {result.display: result for result in fresh}
    results = [fresh_by_display.get(display) or cache[display]
               for _path, display, _digest in files]
    timings["phases"]["analyze"] = time.perf_counter() - start

    findings: List[Finding] = []
    modules: List[ModuleImports] = []
    summaries: Dict[str, ModuleSummary] = {}
    for result in results:
        findings.extend(result.findings)
        if result.module is not None:
            modules.append(result.module)
        if result.summary is not None:
            summaries[result.summary.module] = result.summary

    start = time.perf_counter()
    findings.extend(check_layers(modules, layer_map))
    timings["phases"]["layers"] = time.perf_counter() - start

    start = time.perf_counter()
    flow_findings, _graph, _reached, rule_timings = run_flow(
        summaries, entry_points)
    findings.extend(flow_findings)
    timings["phases"]["flow"] = time.perf_counter() - start
    timings["rules"].update(rule_timings)

    findings.sort()

    start = time.perf_counter()
    suppressions: List[Suppression] = []
    if baseline is not None and baseline.exists():
        suppressions = load_baseline(baseline)
    kept, suppressed, stale_entries = apply_baseline(findings, suppressions)
    kept.extend(stale_entries)
    kept.sort()
    timings["phases"]["baseline"] = time.perf_counter() - start

    if incremental_cache is not None:
        _write_cache(incremental_cache, base, results)

    return CheckReport(findings=kept, suppressed=suppressed,
                       files=len(files), graph=import_graph(modules),
                       analyzed=sorted(r.display for r in fresh),
                       cached=len(files) - len(fresh),
                       timings=timings)
