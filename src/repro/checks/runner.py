"""Run the full static pass over a file tree, in parallel.

Per-file work (parse + determinism visitor + import extraction) fans out
over a fork-based process pool — the same strategy as the parallel sweep
runner — and the cross-file layer check runs over the aggregated import
edges afterwards.  Findings are sorted ``(path, line, col, code)`` so
serial and parallel runs produce byte-identical reports.
"""

from __future__ import annotations

import ast
import json
import multiprocessing
import pathlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .baseline import Suppression, apply_baseline, load_baseline
from .determinism import check_determinism
from .findings import RULES, Finding
from .layers import ModuleImports, check_layers, extract_imports, import_graph


@dataclass
class CheckReport:
    """Aggregated result of one static pass."""

    findings: List[Finding]              # unsuppressed (includes stale)
    suppressed: List[Finding] = field(default_factory=list)
    files: int = 0
    graph: Dict[str, List[str]] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return not self.findings

    def format_text(self) -> str:
        lines = [finding.format() for finding in self.findings]
        lines.append(f"checked {self.files} files: "
                     f"{len(self.findings)} finding(s), "
                     f"{len(self.suppressed)} suppressed")
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps({
            "version": 1,
            "files": self.files,
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [f.to_dict() for f in self.suppressed],
            "import_graph": self.graph,
            "rules": {code: rule.title for code, rule in sorted(RULES.items())},
        }, indent=2)


def discover_files(paths: Sequence[pathlib.Path]) -> List[pathlib.Path]:
    """All ``*.py`` files under ``paths`` (files pass through), sorted."""
    out = []
    for path in paths:
        if path.is_dir():
            out.extend(p for p in path.rglob("*.py"))
        elif path.suffix == ".py":
            out.append(path)
    return sorted(set(out))


def _repro_rel_parts(path: pathlib.Path) -> Optional[Tuple[str, ...]]:
    """Path parts relative to the innermost ``repro`` package dir.

    Files outside a ``repro`` tree get no layer identity (determinism
    rules still apply to them).
    """
    parts = path.parts
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return tuple(parts[i + 1:])
    return None


def _display_path(path: pathlib.Path, base: Optional[pathlib.Path]) -> str:
    if base is not None:
        try:
            return path.resolve().relative_to(base.resolve()).as_posix()
        except ValueError:
            pass
    return path.as_posix()


def analyze_file(path_base: Tuple[str, Optional[str]],
                 ) -> Tuple[List[Finding], Optional[ModuleImports]]:
    """Parse one file: determinism findings + import edges (picklable)."""
    path = pathlib.Path(path_base[0])
    base = pathlib.Path(path_base[1]) if path_base[1] else None
    display = _display_path(path, base)
    try:
        source = path.read_text()
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        rule = RULES["LPC001"]
        return ([Finding(path=display, line=exc.lineno or 1,
                         col=exc.offset or 0, code="LPC001",
                         message=f"file does not parse: {exc.msg}",
                         severity=rule.severity, hint=rule.hint)], None)
    except OSError as exc:
        rule = RULES["LPC001"]
        return ([Finding(path=display, line=1, col=0, code="LPC001",
                         message=f"file is unreadable: {exc}",
                         severity=rule.severity, hint=rule.hint)], None)
    findings = check_determinism(display, tree)
    rel_parts = _repro_rel_parts(path)
    module = (extract_imports(display, rel_parts, tree)
              if rel_parts else None)
    return findings, module


def run_checks(paths: Sequence[pathlib.Path],
               base: Optional[pathlib.Path] = None,
               baseline: Optional[pathlib.Path] = None,
               jobs: int = 1,
               layer_map: Optional[Dict[str, int]] = None,
               ) -> CheckReport:
    """The full static pass: determinism + layers + baseline filtering.

    ``base`` anchors finding paths (default: the current directory), so
    the baseline file stays valid wherever the runner is invoked from.
    ``jobs > 1`` forks a process pool for the per-file phase when the
    platform supports fork; results are identical to the serial path.
    """
    base = base if base is not None else pathlib.Path.cwd()
    files = discover_files(paths)
    work = [(str(p), str(base)) for p in files]

    results: List[Tuple[List[Finding], Optional[ModuleImports]]]
    if jobs > 1 and "fork" in multiprocessing.get_all_start_methods():
        context = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(max_workers=jobs,
                                 mp_context=context) as pool:
            results = list(pool.map(analyze_file, work, chunksize=8))
    else:
        results = [analyze_file(item) for item in work]

    findings: List[Finding] = []
    modules: List[ModuleImports] = []
    for file_findings, module in results:
        findings.extend(file_findings)
        if module is not None:
            modules.append(module)
    findings.extend(check_layers(modules, layer_map))
    findings.sort()

    suppressions: List[Suppression] = []
    if baseline is not None and baseline.exists():
        suppressions = load_baseline(baseline)
    kept, suppressed, stale = apply_baseline(findings, suppressions)
    kept.extend(stale)
    kept.sort()
    return CheckReport(findings=kept, suppressed=suppressed,
                       files=len(files), graph=import_graph(modules))
