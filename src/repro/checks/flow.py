"""Fork-safety flow rules (``LPC301``–``LPC304``).

The whole-program pass: given every module's :class:`ModuleSummary` and
the set of modules reachable from the fork/worker entry points (see
:mod:`repro.checks.callgraph`), emit findings for the four shared-state
hazard classes on the sharded/parallel paths.

Each rule is a standalone function in :data:`FLOW_RULES` so the runner
can time them individually (``check --format json`` reports per-rule
milliseconds).  All four produce findings in summary-iteration order and
are sorted downstream with everything else, so output stays
byte-identical across ``--jobs`` values and cold/incremental runs.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Set, Tuple

from .callgraph import (
    KIND_MUTABLE,
    KIND_RESOURCE,
    KIND_RNG,
    ModuleSummary,
    build_graph,
    reachable_from,
)
from .findings import Finding, RULES


def _finding(code: str, path: str, line: int, message: str) -> Finding:
    rule = RULES[code]
    return Finding(path=path, line=line, col=1, code=code,
                   message=message, severity=rule.severity, hint=rule.hint)


def _mutation_lines(summary: ModuleSummary) -> Dict[str, Set[int]]:
    """State-var name -> lines where some function mutates it."""
    lines: Dict[str, Set[int]] = {}
    for facts in summary.functions:
        for name, line, _how in facts.mutations:
            lines.setdefault(name, set()).add(line)
    return lines


def check_fork_mutations(summaries: Dict[str, ModuleSummary],
                         reached: Dict[str, str]) -> List[Finding]:
    """LPC301 — module-state mutation reachable from a fork entry."""
    findings: List[Finding] = []
    for module in sorted(reached):
        summary = summaries.get(module)
        if summary is None:
            continue
        witness = reached[module]
        for facts in summary.functions:
            for name, line, how in facts.mutations:
                findings.append(_finding(
                    "LPC301", summary.path, line,
                    f"'{facts.qualname}' mutates module-level "
                    f"'{name}' ({how}); module is in the fork closure "
                    f"of entry {witness}"))
    return findings


def check_cross_run_containers(summaries: Dict[str, ModuleSummary],
                               reached: Dict[str, str]) -> List[Finding]:
    """LPC302 — mutable module container both mutated and read back.

    Ungated by fork reachability: cross-run contamination is a
    process-wide hazard, not just a worker one.  A read that shares a
    line with a mutation of the same variable (``X.append(...)`` loads
    ``X`` to mutate it) does not count as a read-back.
    """
    findings: List[Finding] = []
    for module in sorted(summaries):
        summary = summaries[module]
        mutated = _mutation_lines(summary)
        for name, var in summary.state.items():
            if var.kind != KIND_MUTABLE or name not in mutated:
                continue
            read_back = any(
                read_name == name and line not in mutated[name]
                for facts in summary.functions
                for read_name, line in facts.reads)
            if read_back:
                findings.append(_finding(
                    "LPC302", summary.path, var.line,
                    f"module-level {var.detail or 'container'} '{name}' "
                    f"is mutated after import time and read back — "
                    f"run N+1 observes run N's leftovers"))
    return findings


def check_module_rng(summaries: Dict[str, ModuleSummary],
                     reached: Dict[str, str]) -> List[Finding]:
    """LPC303 — module-level RNG stream on a fork-reachable path."""
    findings: List[Finding] = []
    for module in sorted(reached):
        summary = summaries.get(module)
        if summary is None:
            continue
        witness = reached[module]
        for name, var in summary.state.items():
            if var.kind != KIND_RNG:
                continue
            findings.append(_finding(
                "LPC303", summary.path, var.line,
                f"module-level RNG '{name}' ({var.detail}) is one "
                f"stream shared across runs and forks; module is in "
                f"the fork closure of entry {witness}"))
        for facts in summary.functions:
            for name, line, ctor in facts.rng_captures:
                findings.append(_finding(
                    "LPC303", summary.path, line,
                    f"'{facts.qualname}' captures {ctor}() into module "
                    f"global '{name}' — an RNG stream outside sim "
                    f"seeding, reachable from {witness}"))
    return findings


def check_fork_resources(summaries: Dict[str, ModuleSummary],
                         reached: Dict[str, str]) -> List[Finding]:
    """LPC304 — fork-unsafe resource held in module state."""
    findings: List[Finding] = []
    for module in sorted(reached):
        summary = summaries.get(module)
        if summary is None:
            continue
        witness = reached[module]
        for name, var in summary.state.items():
            if var.kind != KIND_RESOURCE:
                continue
            findings.append(_finding(
                "LPC304", summary.path, var.line,
                f"module-level {var.detail} '{name}' crosses fork "
                f"boundaries as a broken copy; module is in the fork "
                f"closure of entry {witness}"))
        for facts in summary.functions:
            for name, line, ctor in facts.resource_captures:
                findings.append(_finding(
                    "LPC304", summary.path, line,
                    f"'{facts.qualname}' captures {ctor}() into module "
                    f"global '{name}' — a fork-unsafe resource "
                    f"reachable from {witness}"))
    return findings


#: Rule code -> rule function; iterated in code order by the runner so
#: per-rule timings and finding emission order are deterministic.
FLOW_RULES: Dict[str, Callable[[Dict[str, ModuleSummary], Dict[str, str]],
                               List[Finding]]] = {
    "LPC301": check_fork_mutations,
    "LPC302": check_cross_run_containers,
    "LPC303": check_module_rng,
    "LPC304": check_fork_resources,
}


def run_flow(summaries: Dict[str, ModuleSummary],
             entry_points: Sequence[str],
             ) -> Tuple[List[Finding], Dict[str, List[str]],
                        Dict[str, str], Dict[str, float]]:
    """Run all flow rules; returns (findings, graph, reached, timings).

    ``timings`` maps rule code -> seconds (``time.perf_counter`` deltas,
    host wall time only — never fed back into outcomes).
    """
    import time

    graph = build_graph(summaries)
    reached = reachable_from(graph, entry_points)
    findings: List[Finding] = []
    timings: Dict[str, float] = {}
    for code, rule_fn in FLOW_RULES.items():
        start = time.perf_counter()
        findings.extend(rule_fn(summaries, reached))
        timings[code] = time.perf_counter() - start
    return findings, graph, reached, timings
