"""Static analysis for the reproduction: determinism + layer boundaries.

The two load-bearing promises of this repo — byte-identical seeded runs
and a package tree that mirrors the paper's Layered Pervasive Computing
model — are enforced here as an AST pass (``repro.cli check``,
``make lint``, and the ``tests/test_meta_checks.py`` self-check).

Public surface:

* :func:`repro.checks.runner.run_checks` — the full pass.
* :data:`repro.checks.findings.RULES` — the rule catalogue.
* :data:`repro.checks.layers.LAYER_MAP` — the executable architecture.
"""

from .baseline import (Suppression, apply_baseline, load_baseline,
                       write_baseline)
from .determinism import check_determinism, check_source
from .findings import ERROR, RULES, WARNING, Finding, Rule
from .layers import (LAYER_MAP, ModuleImports, check_layers,
                     extract_imports, import_graph)
from .runner import CheckReport, discover_files, run_checks

__all__ = [
    "ERROR", "WARNING", "Finding", "Rule", "RULES",
    "check_determinism", "check_source",
    "LAYER_MAP", "ModuleImports", "check_layers", "extract_imports",
    "import_graph",
    "Suppression", "load_baseline", "apply_baseline", "write_baseline",
    "CheckReport", "discover_files", "run_checks",
]
