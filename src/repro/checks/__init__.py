"""Static analysis for the reproduction: determinism, layers, fork flow.

The load-bearing promises of this repo — byte-identical seeded runs, a
package tree that mirrors the paper's Layered Pervasive Computing model,
and no hidden mutable module state crossing the fork boundaries of the
sharded/parallel paths — are enforced here as an AST pass
(``repro.cli check``, ``make lint``, and the
``tests/test_meta_checks.py`` self-check).

Public surface:

* :func:`repro.checks.runner.run_checks` — the full pass.
* :data:`repro.checks.findings.RULES` — the rule catalogue.
* :data:`repro.checks.layers.LAYER_MAP` — the executable architecture.
"""

from .baseline import (Suppression, apply_baseline, load_baseline,
                       write_baseline)
from .callgraph import (DEFAULT_FORK_ENTRY_POINTS, ModuleSummary,
                        build_graph, module_sccs, reachable_from,
                        summarize_module)
from .determinism import check_determinism, check_source
from .findings import ERROR, RULES, WARNING, Finding, Rule
from .flow import FLOW_RULES, run_flow
from .layers import (LAYER_MAP, ModuleImports, check_layers,
                     extract_imports, import_graph)
from .runner import CheckReport, discover_files, run_checks

__all__ = [
    "ERROR", "WARNING", "Finding", "Rule", "RULES",
    "check_determinism", "check_source",
    "LAYER_MAP", "ModuleImports", "check_layers", "extract_imports",
    "import_graph",
    "DEFAULT_FORK_ENTRY_POINTS", "ModuleSummary", "build_graph",
    "module_sccs", "reachable_from", "summarize_module",
    "FLOW_RULES", "run_flow",
    "Suppression", "load_baseline", "apply_baseline", "write_baseline",
    "CheckReport", "discover_files", "run_checks",
]
