"""Import-graph layer checker (rule codes ``LPC2xx``).

The paper's Layered Pervasive Computing model is declared here as an
executable architecture rule: every package under ``repro/`` has a rank,
and a module may only import packages with a *strictly lower* rank (or
its own package).  Module-scope violations are errors (``LPC201``);
function-scoped / ``TYPE_CHECKING`` imports are the sanctioned lazy
escape hatch for genuine cycles and are reported as warnings
(``LPC203``) that must be suppressed in the baseline with a
justification.

The declared order (lowest first)::

    kernel                          # discrete-event substrate
    metrics | env | resource        # leaf libraries over the kernel
    net                             # wire formats + protocol machines
    phys | discovery                # radios/MAC (uses net frames), lookup
    user | services                 # people models, Aroma services
    core                            # the LPC conceptual model itself
    telemetry                       # layer reports over core + kernel
    experiments                     # scenario harness over everything
    cli / package root              # entry points

Note one deliberate deviation from the ISSUE's nominal chain
(kernel -> env -> phys -> net -> ...): ``net`` ranks *below* ``phys``
because the MAC layer transmits :class:`repro.net.frames.Frame` objects
— the frame/address definitions are wire formats, not protocol logic,
and the dependency has pointed that way since the seed.  The layer map
records the architecture as built; see docs/static_analysis.md.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from .findings import RULES, Finding

#: Package rank within ``repro``: imports must flow strictly downward.
LAYER_MAP: Dict[str, int] = {
    "kernel": 0,
    "metrics": 1,
    "env": 1,
    "resource": 1,
    "net": 2,
    "phys": 3,
    "discovery": 3,
    "user": 4,
    "services": 4,
    "core": 5,
    "telemetry": 6,
    "experiments": 7,
    "checks": 7,
    "app": 8,   # package root: __init__, __main__, cli
}

#: Root-level modules (repro/<name>.py) folded into the "app" layer.
_ROOT_MODULES = ("__init__", "__main__", "cli")

MODULE_SCOPE = "module"
LAZY_SCOPE = "lazy"


@dataclass
class ImportEdge:
    """One ``import`` statement crossing a package boundary."""

    target: str          # target package name under repro
    line: int
    scope: str           # MODULE_SCOPE or LAZY_SCOPE


@dataclass
class ModuleImports:
    """The outgoing repro-internal edges of one module."""

    path: str            # finding path (posix, relative to runner base)
    package: str         # owning package under repro ("kernel", "app", ...)
    edges: List[ImportEdge] = field(default_factory=list)


def package_of(parts: Tuple[str, ...]) -> Optional[str]:
    """Owning package for a module path relative to the ``repro`` dir.

    ``("kernel", "scheduler.py")`` -> ``"kernel"``;
    ``("cli.py",)`` -> ``"app"``; unknown root files -> their stem.
    """
    if not parts:
        return None
    if len(parts) == 1:
        stem = parts[0][:-3] if parts[0].endswith(".py") else parts[0]
        return "app" if stem in _ROOT_MODULES else stem
    return parts[0]


class _ImportCollector(ast.NodeVisitor):
    """Collect repro-internal import edges with their scope."""

    def __init__(self, module: ModuleImports,
                 rel_parts: Tuple[str, ...]) -> None:
        self.module = module
        self.rel_parts = rel_parts    # module path parts under repro/
        self.depth = 0                # >0 inside function/TYPE_CHECKING

    # -- scope tracking -------------------------------------------------
    def _lazy(self) -> bool:
        return self.depth > 0

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.depth += 1
        self.generic_visit(node)
        self.depth -= 1

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.depth += 1
        self.generic_visit(node)
        self.depth -= 1

    def visit_If(self, node: ast.If) -> None:
        if self._is_type_checking(node.test):
            self.depth += 1
            self.generic_visit(node)
            self.depth -= 1
        else:
            self.generic_visit(node)

    @staticmethod
    def _is_type_checking(test: ast.AST) -> bool:
        if isinstance(test, ast.Name):
            return test.id == "TYPE_CHECKING"
        if isinstance(test, ast.Attribute):
            return test.attr == "TYPE_CHECKING"
        return False

    # -- edges ----------------------------------------------------------
    def _add(self, target: Optional[str], line: int) -> None:
        if target is None or target == self.module.package:
            return
        scope = LAZY_SCOPE if self._lazy() else MODULE_SCOPE
        self.module.edges.append(ImportEdge(target, line, scope))

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            parts = alias.name.split(".")
            if parts[0] == "repro":
                self._add(package_of(tuple(parts[1:])) if len(parts) > 1
                          else "app", node.lineno)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        if node.level == 0:
            parts = module.split(".")
            if parts[0] == "repro":
                if len(parts) > 1:
                    self._add(package_of(tuple(parts[1:])), node.lineno)
                else:
                    # from repro import kernel, core, ...
                    for alias in node.names:
                        self._add(package_of((alias.name,)), node.lineno)
            return
        # Relative import: resolve against this module's location.
        # rel_parts includes the filename; the package dir chain is
        # rel_parts[:-1].  "from ." strips 1 level, "from .." strips 2...
        base = list(self.rel_parts[:-1])
        strip = node.level - 1
        if strip > len(base):
            return  # beyond the repro root (caught by python itself)
        base = base[:len(base) - strip] if strip else base
        target_parts = tuple(base + (module.split(".") if module else []))
        if target_parts:
            self._add(package_of(target_parts), node.lineno)
        else:
            # from .. import phys, net  (at repro root)
            for alias in node.names:
                self._add(package_of((alias.name,)), node.lineno)


def extract_imports(path: str, rel_parts: Tuple[str, ...],
                    tree: ast.Module) -> ModuleImports:
    """The repro-internal import edges of one parsed module.

    ``rel_parts`` is the module's path relative to the ``repro`` package
    directory, e.g. ``("phys", "mac.py")``.
    """
    module = ModuleImports(path=path,
                           package=package_of(rel_parts) or "app")
    _ImportCollector(module, rel_parts).visit(tree)
    return module


def _finding(path: str, line: int, code: str, message: str) -> Finding:
    rule = RULES[code]
    return Finding(path=path, line=line, col=0, code=code,
                   message=message, severity=rule.severity, hint=rule.hint)


def check_layers(modules: Iterable[ModuleImports],
                 layer_map: Optional[Dict[str, int]] = None,
                 ) -> List[Finding]:
    """LPC2xx findings for a set of modules' import edges."""
    ranks = LAYER_MAP if layer_map is None else layer_map
    findings: List[Finding] = []
    for module in modules:
        src_rank = ranks.get(module.package)
        if src_rank is None:
            findings.append(_finding(
                module.path, 1, "LPC202",
                f"package '{module.package}' has no declared layer rank"))
            continue
        for edge in module.edges:
            dst_rank = ranks.get(edge.target)
            if dst_rank is None:
                findings.append(_finding(
                    module.path, edge.line, "LPC202",
                    f"import of unmapped package '{edge.target}'"))
                continue
            if dst_rank < src_rank:
                continue  # downward: allowed
            direction = ("sideways (same rank)" if dst_rank == src_rank
                         else "upward")
            if edge.scope == MODULE_SCOPE:
                findings.append(_finding(
                    module.path, edge.line, "LPC201",
                    f"{direction} import: layer '{module.package}' "
                    f"(rank {src_rank}) imports '{edge.target}' "
                    f"(rank {dst_rank})"))
            else:
                findings.append(_finding(
                    module.path, edge.line, "LPC203",
                    f"lazy {direction} import: layer '{module.package}' "
                    f"(rank {src_rank}) imports '{edge.target}' "
                    f"(rank {dst_rank}) inside a function/TYPE_CHECKING "
                    "block"))
    return findings


def import_graph(modules: Iterable[ModuleImports]) -> Dict[str, List[str]]:
    """Package-level adjacency (sorted, deduplicated) for reports."""
    graph: Dict[str, set] = {}
    for module in modules:
        targets = graph.setdefault(module.package, set())
        for edge in module.edges:
            targets.add(edge.target)
    return {pkg: sorted(targets) for pkg, targets in sorted(graph.items())}
