"""Findings and the rule catalogue for the ``repro.checks`` static pass.

Every rule the pass can emit lives in :data:`RULES` so that the CLI
(``repro.cli check --list-rules``), the documentation
(``docs/static_analysis.md``) and the tests enumerate the same catalogue.

Rule code families:

* ``LPC0xx`` — runner/baseline plumbing (unparseable file, stale
  suppression).
* ``LPC1xx`` — determinism: constructs that can make two runs of the
  same seed diverge (wall clock, global RNG state, set-iteration order,
  ``id()`` ordering, mutable default arguments).
* ``LPC2xx`` — layering: imports that violate the declared Layered
  Pervasive Computing map (see :mod:`repro.checks.layers`).
* ``LPC3xx`` — fork-safety flow rules over the whole-program call graph
  (see :mod:`repro.checks.callgraph` / :mod:`repro.checks.flow`): hidden
  mutable module state, cross-run contamination, RNG-stream discipline
  and fork-unsafe resources on the sharded/parallel paths.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict

ERROR = "error"
WARNING = "warning"


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic: where, what rule, and how to fix it."""

    path: str          # posix path, relative to the runner's base dir
    line: int
    col: int
    code: str          # e.g. "LPC101"
    message: str
    severity: str = ERROR
    hint: str = ""     # one-line fix suggestion

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def format(self) -> str:
        text = f"{self.location()} {self.code} [{self.severity}] {self.message}"
        if self.hint:
            text += f" — {self.hint}"
        return text

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)


@dataclass(frozen=True)
class Rule:
    """Catalogue entry: what a code means and how violations are fixed."""

    code: str
    title: str
    severity: str
    rationale: str
    hint: str


# The catalogue is a module-scope literal on purpose: building it through
# a registration helper would mutate a module-level dict from a function
# body — exactly the pattern LPC301 exists to flag — and the checks
# package holds itself to its own rules.
_CATALOGUE = (
    # -- LPC0xx — runner plumbing --------------------------------------
    Rule("LPC001", "unparseable file", ERROR,
         "A file that does not parse cannot be analysed, so nothing in it "
         "is checked; treat it like a build break.",
         "fix the syntax error (python -m py_compile <file>)"),
    Rule("LPC002", "stale baseline entry", WARNING,
         "A suppression that matches no current finding hides nothing and "
         "rots: when the violation comes back it is silently re-suppressed.",
         "delete the entry from the baseline file"),

    # -- LPC1xx — determinism ------------------------------------------
    Rule("LPC101", "wall-clock read", ERROR,
         "time.time()/datetime.now() differ between runs, so any value "
         "derived from them breaks byte-identical seeded replay. Simulated "
         "time comes from Simulator.now; time.perf_counter() is allowed "
         "for measuring host wall time that never feeds back into "
         "outcomes.",
         "use sim.now for simulated time, time.perf_counter() for "
         "benchmarks"),
    Rule("LPC102", "stdlib random module", ERROR,
         "The stdlib random module defaults to global, OS-entropy-seeded "
         "state shared by every caller, which destroys variance isolation "
         "between components.",
         "draw from a named repro.kernel.random.RandomStreams stream"),
    Rule("LPC103", "unseeded or global-state RNG", ERROR,
         "default_rng() with no seed, random.Random() with no seed, and "
         "the legacy numpy global functions (np.random.rand, "
         "np.random.seed, ...) produce different numbers each run or "
         "share hidden global state.",
         "construct generators from RandomStreams.stream(name)"),
    Rule("LPC104", "ordering-sensitive set iteration", ERROR,
         "Iteration order of a set/frozenset of strings depends on "
         "PYTHONHASHSEED, so any loop, comprehension, or list()/tuple() "
         "conversion over one can reorder events between runs. Membership "
         "tests and order-insensitive folds (sorted/min/max/sum/len/"
         "any/all) are fine. Dict views are insertion-ordered and allowed.",
         "wrap in sorted(...) or keep an insertion-ordered dict/list"),
    Rule("LPC105", "id()-based ordering", ERROR,
         "id() is an allocation address: sorting by it gives a different "
         "order every process, even with identical seeds.",
         "sort by a stable domain key (name, address, sequence number)"),
    Rule("LPC106", "mutable default argument", ERROR,
         "A list/dict/set default is created once and shared by every "
         "call, so state leaks across calls and across simulator "
         "instances.",
         "default to None and create the container inside the function"),
    Rule("LPC107", "direct heapq use outside the kernel", ERROR,
         "Event ordering is the kernel's contract: heap and batch entries "
         "share one global sequence counter, and the two-source merge in "
         "Simulator.run is the only place allowed to decide what fires "
         "next. A private heapq elsewhere re-implements that ordering "
         "without the tie-break, span-context, and cancellation "
         "semantics, and its outcomes silently diverge from the "
         "batching=False oracle.",
         "schedule through sim.schedule/schedule_at or a sim.batch_class "
         "timer queue instead of a private heap"),
    Rule("LPC108", "cross-shard state access outside the shard runtime",
         ERROR,
         "Under sharded execution each shard's Simulator/World lives in "
         "its own process; reaching into another shard's .sim or .world "
         "works only by fork-inheritance accident, silently diverges from "
         "the multi-process run, and bypasses the conservative-sync "
         "ordering guarantees. Only kernel/shard.py (the coordinator) may "
         "touch per-shard engine state directly.",
         "route cross-shard effects through ShardPorts boundary channels "
         "(send/open), never through another shard's engine objects"),
    Rule("LPC109", "per-event attribute lookup in a registered hot loop",
         WARNING,
         "Functions registered in repro.kernel.dispatch.HOT_LOOP are the "
         "kernel's monomorphic run-loop variants: they execute once per "
         "simulated event, so every attribute walk inside their while/for "
         "bodies is paid millions of times per run. The dispatch-core "
         "contract is that loop state is hoisted into locals before the "
         "loop and only a short allow-list of genuinely per-event reads "
         "(cancellation flags, the stop latch, ambient span context) "
         "remains inside it.",
         "hoist the attribute into a local before the loop, or add it to "
         "HOT_LOOP_ALLOWED_ATTRS with a comment justifying the per-event "
         "read"),

    # -- LPC2xx — layer boundaries -------------------------------------
    Rule("LPC201", "upward or sideways layer import", ERROR,
         "A module-scope import from a lower LPC layer into a higher (or "
         "sibling) one inverts the paper's layering: the kernel must "
         "never know about services, env must never know about phys, and "
         "sibling layers stay decoupled.",
         "move the shared code down a layer, or invert with a "
         "callback/event"),
    Rule("LPC202", "package missing from the layer map", ERROR,
         "Every package under repro/ must have a declared layer rank; an "
         "unmapped package is architecture that nobody placed.",
         "add the package to repro.checks.layers.LAYER_MAP with a rank"),
    Rule("LPC203", "lazy (function-scoped) upward import", WARNING,
         "An upward import inside a function body or TYPE_CHECKING block "
         "does not execute at import time, so it is the sanctioned escape "
         "hatch for genuine cycles — but each one must be justified in "
         "the baseline so the exceptions stay enumerable.",
         "suppress in the baseline with a justification, or restructure"),

    # -- LPC3xx — fork-safety flow rules -------------------------------
    Rule("LPC301", "module-state mutation reachable from a fork entry",
         ERROR,
         "A function reachable from a fork/worker entry point mutates "
         "module-level state (a global rebind or an in-place container "
         "write). Forked workers inherit a snapshot of every imported "
         "module, so the mutation silently diverges between parent and "
         "children, and within one process it leaks across runs — the "
         "services.sessions._session_seq bug class.",
         "move the state onto the Simulator (sim.context) or an object "
         "owned by the run, not the module"),
    Rule("LPC302", "cross-run contamination via module-level container",
         ERROR,
         "A module-level mutable container is both mutated after import "
         "time and read back, so run N+1 observes state left behind by "
         "run N in the same process — byte-identical twin runs are "
         "impossible through such a container unless every write is "
         "idempotent and value-deterministic.",
         "scope the container to the run (sim.context / an engine "
         "object), or baseline it with a justification of idempotence"),
    Rule("LPC303", "module-level RNG stream outside sim seeding", ERROR,
         "An np.random.Generator/random.Random bound at module scope (or "
         "captured into a module global) is one stream shared by every "
         "run and every fork: draws interleave across runs, and forked "
         "workers clone identical stream state. Even a seeded module RNG "
         "breaks variance isolation — streams must derive from the "
         "simulator's RandomStreams / per-station seeding.",
         "derive generators from RandomStreams.stream(name) or "
         "per-station seeds at run scope"),
    Rule("LPC304", "fork-unsafe resource captured at module scope", ERROR,
         "A pool, lock, open file handle or socket held in module state "
         "crosses fork boundaries as a broken copy: children inherit "
         "locked locks, shared file offsets and pool pipes they must not "
         "use. Any worker that can reach the module sees the hazard.",
         "create the resource inside the owning function/object and tear "
         "it down explicitly; if a process-wide pool is intentional, "
         "baseline it with its documented fork semantics"),
)

RULES: Dict[str, Rule] = {rule.code: rule for rule in _CATALOGUE}
