"""JSON baseline (suppression) file for the static pass.

A baseline entry silences one rule code at one path — optionally pinned
to a line — and **must** carry a non-empty justification string that
does not start with ``TODO``.  The file format::

    {
      "version": 1,
      "suppressions": [
        {"code": "LPC203", "path": "src/repro/kernel/scheduler.py",
         "justification": "sanctioned lazy import breaking the ... cycle"}
      ]
    }

Stale entries (matching no current finding) are reported as ``LPC002``
findings so the baseline can only shrink or be re-justified, never rot.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..kernel.errors import ConfigurationError
from .findings import RULES, Finding

BASELINE_VERSION = 1


@dataclass(frozen=True)
class Suppression:
    """One baselined violation, with its mandatory justification."""

    code: str
    path: str                      # posix path as reported by the runner
    justification: str
    line: Optional[int] = None     # pin to a line, or any line when None

    def matches(self, finding: Finding) -> bool:
        return (self.code == finding.code
                and self.path == finding.path
                and (self.line is None or self.line == finding.line))

    def to_dict(self) -> Dict[str, object]:
        entry: Dict[str, object] = {
            "code": self.code, "path": self.path,
            "justification": self.justification}
        if self.line is not None:
            entry["line"] = self.line
        return entry


def _validate(entry: Dict[str, object], index: int) -> Suppression:
    for key in ("code", "path", "justification"):
        if not isinstance(entry.get(key), str):
            raise ConfigurationError(
                f"baseline entry #{index}: missing/non-string '{key}'")
    code = str(entry["code"])
    if code not in RULES:
        raise ConfigurationError(
            f"baseline entry #{index}: unknown rule code {code!r}")
    justification = str(entry["justification"]).strip()
    if not justification or justification.upper().startswith("TODO"):
        raise ConfigurationError(
            f"baseline entry #{index} ({code} at {entry['path']}): "
            "a real justification is mandatory (empty/TODO rejected)")
    line = entry.get("line")
    if line is not None and not isinstance(line, int):
        raise ConfigurationError(
            f"baseline entry #{index}: 'line' must be an integer")
    return Suppression(code=code, path=str(entry["path"]),
                       justification=justification, line=line)


def load_baseline(path: pathlib.Path) -> List[Suppression]:
    """Parse and validate a baseline file."""
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"baseline {path}: invalid JSON: {exc}")
    if not isinstance(data, dict) or "suppressions" not in data:
        raise ConfigurationError(
            f"baseline {path}: expected an object with 'suppressions'")
    entries = data["suppressions"]
    if not isinstance(entries, list):
        raise ConfigurationError(
            f"baseline {path}: 'suppressions' must be a list")
    return [_validate(entry, i) for i, entry in enumerate(entries)]


def apply_baseline(findings: Iterable[Finding],
                   suppressions: List[Suppression],
                   ) -> Tuple[List[Finding], List[Finding], List[Finding]]:
    """Split findings into (kept, suppressed) and flag stale entries.

    Returns ``(kept, suppressed, stale)`` where ``stale`` contains one
    ``LPC002`` finding per suppression that matched nothing.
    """
    kept: List[Finding] = []
    suppressed: List[Finding] = []
    used = [False] * len(suppressions)
    for finding in findings:
        hit = None
        for i, suppression in enumerate(suppressions):
            if suppression.matches(finding):
                hit = i
                break
        if hit is None:
            kept.append(finding)
        else:
            used[hit] = True
            suppressed.append(finding)
    rule = RULES["LPC002"]
    stale = [
        Finding(path=suppression.path, line=suppression.line or 1, col=0,
                code="LPC002",
                message=f"baseline entry for {suppression.code} matches "
                        "no current finding",
                severity=rule.severity, hint=rule.hint)
        for suppression, was_used in zip(suppressions, used) if not was_used]
    return kept, suppressed, stale


def write_baseline(findings: Iterable[Finding], path: pathlib.Path,
                   justification: str = "") -> int:
    """Write a baseline template covering ``findings``.

    The template carries empty justifications on purpose: the loader
    refuses them, so an operator must edit in a real reason before the
    baseline becomes usable.  Returns the number of entries written.
    """
    entries = [
        Suppression(code=f.code, path=f.path, justification=justification,
                    line=f.line).to_dict()
        for f in sorted(set(findings))]
    path.write_text(json.dumps(
        {"version": BASELINE_VERSION, "suppressions": entries},
        indent=2) + "\n")
    return len(entries)
