"""The physical world: geometry shared by devices, users and radio waves.

The paper argues the environment deserves its *own* layer beneath the
physical layer: mobile pervasive systems cannot engineer the environment
away.  :class:`World` is that layer made concrete — a bounded 2-D space
holding positioned entities, with vectorised spatial queries used by the
radio propagation model (distances to every interferer in one NumPy call,
per the HPC guides' "vectorise the hot loop" rule).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..kernel.errors import ConfigurationError


class Placement:
    """A named, movable point in the world."""

    __slots__ = ("name", "_world", "_index")

    def __init__(self, name: str, world: "World", index: int) -> None:
        self.name = name
        self._world = world
        self._index = index

    @property
    def position(self) -> np.ndarray:
        """Current ``(x, y)`` position in metres (a copy)."""
        return self._world._positions[self._index].copy()

    @position.setter
    def position(self, xy: Sequence[float]) -> None:
        self._world.move(self.name, xy)

    def distance_to(self, other: "Placement") -> float:
        """Euclidean distance in metres to another placement."""
        delta = self._world._positions[self._index] - self._world._positions[other._index]
        return float(np.hypot(delta[0], delta[1]))

    def __repr__(self) -> str:  # pragma: no cover
        x, y = self.position
        return f"<Placement {self.name} ({x:.2f}, {y:.2f})>"


class World:
    """A bounded rectangular 2-D world.

    Args:
        width: extent in metres along x.
        height: extent in metres along y.

    Positions are stored in one contiguous ``(n, 2)`` float64 array so the
    propagation model can compute all pairwise distances without Python
    loops.
    """

    def __init__(self, width: float = 100.0, height: float = 100.0) -> None:
        if width <= 0 or height <= 0:
            raise ConfigurationError(f"world extent must be positive, got {width}x{height}")
        self.width = float(width)
        self.height = float(height)
        self._positions = np.empty((0, 2), dtype=np.float64)
        self._names: List[str] = []
        self._index: Dict[str, int] = {}
        self._epoch: int = 0

    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """Topology epoch: bumped on every placement or move.

        Consumers that cache anything derived from positions (the radio
        link cache, spatial indexes) key their cache on this counter and
        invalidate when it changes.
        """
        return self._epoch

    def place(self, name: str, xy: Sequence[float]) -> Placement:
        """Add an entity at ``xy``; names must be unique."""
        if name in self._index:
            raise ConfigurationError(f"entity {name!r} already placed")
        pos = self._clip(np.asarray(xy, dtype=np.float64))
        self._index[name] = len(self._names)
        self._names.append(name)
        self._positions = np.vstack([self._positions, pos[None, :]])
        self._epoch += 1
        return Placement(name, self, self._index[name])

    def move(self, name: str, xy: Sequence[float]) -> None:
        """Teleport entity ``name`` to ``xy`` (clipped to the world bounds)."""
        idx = self._lookup(name)
        self._positions[idx] = self._clip(np.asarray(xy, dtype=np.float64))
        self._epoch += 1

    def position_of(self, name: str) -> np.ndarray:
        return self._positions[self._lookup(name)].copy()

    def placement(self, name: str) -> Placement:
        return Placement(name, self, self._lookup(name))

    def _lookup(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise ConfigurationError(f"unknown entity {name!r}") from None

    def _clip(self, pos: np.ndarray) -> np.ndarray:
        if pos.shape != (2,):
            raise ConfigurationError(f"position must be (x, y), got {pos!r}")
        return np.clip(pos, [0.0, 0.0], [self.width, self.height])

    # ------------------------------------------------------------------
    # Vectorised queries (hot path for the radio model)
    # ------------------------------------------------------------------
    def distance_between(self, a: str, b: str) -> float:
        """Scalar distance (m) between two entities, min-clipped to 0.1 m.

        The radio medium's carrier-sense and delivery paths call this once
        per (station, transmission) pair, so it avoids the array plumbing
        of :meth:`distances_from` entirely — profiling showed that one
        change worth ~25% of a dense interference sweep.
        """
        pa = self._positions[self._lookup(a)]
        pb = self._positions[self._lookup(b)]
        dx = pa[0] - pb[0]
        dy = pa[1] - pb[1]
        dist = (dx * dx + dy * dy) ** 0.5
        return dist if dist > 0.1 else 0.1

    def distances_from(self, name: str, others: Optional[Iterable[str]] = None) -> np.ndarray:
        """Distances (m) from ``name`` to ``others`` (default: everyone).

        A minimum separation of 0.1 m is enforced to keep path-loss models
        finite when entities are co-located.
        """
        origin = self._positions[self._lookup(name)]
        if others is None:
            pts = self._positions
        else:
            idx = np.fromiter((self._lookup(o) for o in others), dtype=np.intp)
            pts = self._positions[idx] if idx.size else np.empty((0, 2))
        if pts.shape[0] == 0:
            return np.empty(0)
        delta = pts - origin
        return np.maximum(np.sqrt(np.einsum("ij,ij->i", delta, delta)), 0.1)

    def pairwise_distances(self, names: Sequence[str]) -> np.ndarray:
        """Full distance matrix (m) among ``names`` (min-clipped to 0.1 m)."""
        idx = np.fromiter((self._lookup(n) for n in names), dtype=np.intp)
        pts = self._positions[idx]
        delta = pts[:, None, :] - pts[None, :, :]
        dist = np.sqrt(np.einsum("ijk,ijk->ij", delta, delta))
        np.fill_diagonal(dist, 0.0)
        return np.where(dist > 0, np.maximum(dist, 0.1), dist)

    def within(self, name: str, radius: float) -> List[str]:
        """Names of other entities within ``radius`` metres of ``name``."""
        dists = self.distances_from(name)
        me = self._lookup(name)
        return [n for i, n in enumerate(self._names)
                if i != me and dists[i] <= radius]

    def names(self) -> List[str]:
        return list(self._names)

    def __len__(self) -> int:
        return len(self._names)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __repr__(self) -> str:  # pragma: no cover
        return f"<World {self.width:.0f}x{self.height:.0f}m n={len(self)}>"
