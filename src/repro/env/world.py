"""The physical world: geometry shared by devices, users and radio waves.

The paper argues the environment deserves its *own* layer beneath the
physical layer: mobile pervasive systems cannot engineer the environment
away.  :class:`World` is that layer made concrete — a bounded 2-D space
holding positioned entities, with vectorised spatial queries used by the
radio propagation model (distances to every interferer in one NumPy call,
per the HPC guides' "vectorise the hot loop" rule).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..kernel.errors import ConfigurationError


class Placement:
    """A named, movable point in the world."""

    __slots__ = ("name", "_world", "_index")

    def __init__(self, name: str, world: "World", index: int) -> None:
        self.name = name
        self._world = world
        self._index = index

    @property
    def position(self) -> np.ndarray:
        """Current ``(x, y)`` position in metres (a copy)."""
        return self._world._positions[self._index].copy()

    @position.setter
    def position(self, xy: Sequence[float]) -> None:
        self._world.move(self.name, xy)

    def distance_to(self, other: "Placement") -> float:
        """Euclidean distance in metres to another placement."""
        delta = self._world._positions[self._index] - self._world._positions[other._index]
        return float(np.hypot(delta[0], delta[1]))

    def __repr__(self) -> str:  # pragma: no cover
        x, y = self.position
        return f"<Placement {self.name} ({x:.2f}, {y:.2f})>"


class World:
    """A bounded rectangular 2-D world.

    Args:
        width: extent in metres along x.
        height: extent in metres along y.

    Positions are stored in one contiguous ``(n, 2)`` float64 array so the
    propagation model can compute all pairwise distances without Python
    loops.
    """

    #: Initial capacity of the position buffer (doubles when exhausted).
    _INITIAL_CAPACITY: int = 8

    def __init__(self, width: float = 100.0, height: float = 100.0) -> None:
        if width <= 0 or height <= 0:
            raise ConfigurationError(f"world extent must be positive, got {width}x{height}")
        self.width = float(width)
        self.height = float(height)
        # Positions live in a preallocated buffer with amortised doubling:
        # ``place`` is O(1) amortised instead of the O(n) per-call copy an
        # ``np.vstack`` incremental build costs (O(n^2) to fill a world).
        self._buf = np.empty((self._INITIAL_CAPACITY, 2), dtype=np.float64)
        self._n: int = 0
        self._names: List[str] = []
        self._index: Dict[str, int] = {}
        self._epoch: int = 0
        self._grid = None  # lazily-built SpatialGrid backing ``within``

    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """Topology epoch: bumped on every placement or move.

        Consumers that cache anything derived from positions (the radio
        link cache, spatial indexes) key their cache on this counter and
        invalidate when it changes.
        """
        return self._epoch

    @property
    def _positions(self) -> np.ndarray:
        """The live ``(n, 2)`` position array (a view into the buffer).

        Views go stale when a ``place`` forces the buffer to grow, so
        consumers must re-fetch per operation rather than hold one.
        """
        return self._buf[: self._n]

    def positions(self) -> np.ndarray:
        """Read-only view of all positions in insertion order, ``(n, 2)``.

        Used by the spatial index and vectorised consumers; treat it as
        immutable and re-fetch after any ``place`` (the buffer may move).
        """
        return self._buf[: self._n]

    def place(self, name: str, xy: Sequence[float]) -> Placement:
        """Add an entity at ``xy``; names must be unique."""
        if name in self._index:
            raise ConfigurationError(f"entity {name!r} already placed")
        pos = self._clip(np.asarray(xy, dtype=np.float64))
        if self._n == self._buf.shape[0]:
            grown = np.empty((self._buf.shape[0] * 2, 2), dtype=np.float64)
            grown[: self._n] = self._buf
            self._buf = grown
        self._buf[self._n] = pos
        self._index[name] = self._n
        self._names.append(name)
        self._n += 1
        self._epoch += 1
        return Placement(name, self, self._index[name])

    def move(self, name: str, xy: Sequence[float]) -> None:
        """Teleport entity ``name`` to ``xy`` (clipped to the world bounds)."""
        idx = self._lookup(name)
        self._buf[idx] = self._clip(np.asarray(xy, dtype=np.float64))
        self._epoch += 1

    def position_of(self, name: str) -> np.ndarray:
        return self._positions[self._lookup(name)].copy()

    def placement(self, name: str) -> Placement:
        return Placement(name, self, self._lookup(name))

    def _lookup(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise ConfigurationError(f"unknown entity {name!r}") from None

    def _clip(self, pos: np.ndarray) -> np.ndarray:
        if pos.shape != (2,):
            raise ConfigurationError(f"position must be (x, y), got {pos!r}")
        return np.clip(pos, [0.0, 0.0], [self.width, self.height])

    # ------------------------------------------------------------------
    # Vectorised queries (hot path for the radio model)
    # ------------------------------------------------------------------
    def distance_between(self, a: str, b: str) -> float:
        """Scalar distance (m) between two entities, min-clipped to 0.1 m.

        The radio medium's carrier-sense and delivery paths call this once
        per (station, transmission) pair, so it avoids the array plumbing
        of :meth:`distances_from` entirely — profiling showed that one
        change worth ~25% of a dense interference sweep.
        """
        pa = self._buf[self._lookup(a)]
        pb = self._buf[self._lookup(b)]
        dx = pa[0] - pb[0]
        dy = pa[1] - pb[1]
        dist = (dx * dx + dy * dy) ** 0.5
        return dist if dist > 0.1 else 0.1

    def distances_from(self, name: str, others: Optional[Iterable[str]] = None) -> np.ndarray:
        """Distances (m) from ``name`` to ``others`` (default: everyone).

        A minimum separation of 0.1 m is enforced to keep path-loss models
        finite when entities are co-located.
        """
        origin = self._positions[self._lookup(name)]
        if others is None:
            pts = self._positions
        else:
            idx = np.fromiter((self._lookup(o) for o in others), dtype=np.intp)
            pts = self._positions[idx] if idx.size else np.empty((0, 2))
        if pts.shape[0] == 0:
            return np.empty(0)
        delta = pts - origin
        return np.maximum(np.sqrt(np.einsum("ij,ij->i", delta, delta)), 0.1)

    def pairwise_distances(self, names: Sequence[str]) -> np.ndarray:
        """Full distance matrix (m) among ``names`` (min-clipped to 0.1 m)."""
        idx = np.fromiter((self._lookup(n) for n in names), dtype=np.intp)
        pts = self._positions[idx]
        delta = pts[:, None, :] - pts[None, :, :]
        dist = np.sqrt(np.einsum("ijk,ijk->ij", delta, delta))
        np.fill_diagonal(dist, 0.0)
        return np.where(dist > 0, np.maximum(dist, 0.1), dist)

    def within(self, name: str, radius: float) -> List[str]:
        """Names of other entities within ``radius`` metres of ``name``.

        Served by the shared :class:`~repro.env.spatialindex.SpatialGrid`,
        so the cost scales with the entities the radius can actually reach
        rather than the world population.  Results keep the brute-force
        scan's insertion order exactly.
        """
        return self.grid().neighbors_within(name, radius)

    def grid(self):
        """The world's lazily-built spatial index (shared by consumers)."""
        if self._grid is None:
            from .spatialindex import SpatialGrid
            self._grid = SpatialGrid(self)
        return self._grid

    def index_of(self, name: str) -> int:
        """Insertion index of ``name`` (stable for the entity's lifetime)."""
        return self._lookup(name)

    def names_view(self) -> List[str]:
        """The internal insertion-ordered name list — do not mutate."""
        return self._names

    def diagonal_m(self) -> float:
        """World diagonal in metres — the upper bound on any separation."""
        return float(np.hypot(self.width, self.height))

    def names(self) -> List[str]:
        return list(self._names)

    def __len__(self) -> int:
        return len(self._names)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __repr__(self) -> str:  # pragma: no cover
        return f"<World {self.width:.0f}x{self.height:.0f}m n={len(self)}>"
