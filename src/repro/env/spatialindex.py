"""Uniform-grid spatial index over :class:`~repro.env.world.World` positions.

The paper leaves device density as the open question ("the effect of a high
concentration of these devices needs to be studied"), and studying it means
simulating rooms with hundreds or thousands of stations.  Every per-frame
question the radio medium asks — *who can hear this transmission?* — is a
range query, and answering it by scanning the whole population makes the
medium O(stations) per frame.  :class:`SpatialGrid` turns that into a query
over the handful of grid cells a radius actually covers, so per-frame cost
tracks *neighbours*, not population.

Design points (documented in ``docs/performance.md``):

* **Lazy rebuild keyed on** :attr:`World.epoch`.  The grid never observes a
  stale world: every query first compares the world's topology epoch and
  rebuilds the whole index when it moved.  A rebuild is one vectorised
  NumPy pass (sort by linearised cell id), so mobile scenarios pay one
  O(n log n) rebuild per mobility step — never per query.
* **Cell size** defaults to a density heuristic (a few entities per cell)
  and can be pinned for workloads that know their query radius; the classic
  choice is one query radius per cell.
* **Queries are conservative and exact**: candidate cells are taken from
  the bounding box of the radius, then filtered by true Euclidean distance
  (min-clipped to 0.1 m exactly like
  :meth:`World.distances_from <repro.env.world.World.distances_from>`), so
  the result set is identical to the brute-force scan — just cheaper.
  Results come back in world insertion order, which callers rely on for
  deterministic iteration.
"""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING, Tuple

import numpy as np

from ..kernel.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (world -> grid)
    from .world import World

#: Minimum separation enforced by distance queries, metres (matches World).
MIN_SEPARATION_M: float = 0.1

#: Target average entities per cell when the cell size is auto-derived.
_TARGET_PER_CELL: float = 2.0


class SpatialGrid:
    """Uniform bucket grid over world positions, rebuilt lazily per epoch.

    Args:
        world: the world to index (positions are read on rebuild).
        cell_size: cell edge in metres; ``None`` auto-sizes from density
            (roughly :data:`_TARGET_PER_CELL` entities per cell).
    """

    __slots__ = ("world", "cell_size", "_auto_cell", "_epoch", "_cell_m",
                 "_cells", "rebuilds", "queries", "full_scans")

    def __init__(self, world: "World", cell_size: Optional[float] = None) -> None:
        if cell_size is not None and cell_size <= 0:
            raise ConfigurationError(f"cell_size must be positive, got {cell_size}")
        self.world = world
        self.cell_size = cell_size
        self._auto_cell = cell_size is None
        self._epoch: int = -1  # force a build on first query
        self._cell_m: float = 1.0
        #: (cx, cy) -> array of entity indices in that cell (ascending).
        self._cells: Dict[Tuple[int, int], np.ndarray] = {}
        self.rebuilds = 0
        self.queries = 0
        self.full_scans = 0

    # ------------------------------------------------------------------
    def _auto_cell_size(self, count: int) -> float:
        """Cell edge targeting ~:data:`_TARGET_PER_CELL` entities per cell."""
        world = self.world
        if count <= 1:
            return max(world.width, world.height)
        area = world.width * world.height
        cell = float(np.sqrt(area * _TARGET_PER_CELL / count))
        # Never finer than the co-location clip, never coarser than the world.
        return float(np.clip(cell, MIN_SEPARATION_M,
                             max(world.width, world.height)))

    def _rebuild(self) -> None:
        world = self.world
        positions = world.positions()
        count = positions.shape[0]
        self._cell_m = (self._auto_cell_size(count) if self._auto_cell
                        else float(self.cell_size))
        cells: Dict[Tuple[int, int], np.ndarray] = {}
        if count:
            coords = np.floor(positions / self._cell_m).astype(np.intp)
            # Linearise, stable-sort once, then slice per unique cell: one
            # vectorised pass instead of a Python append per entity.
            span = int(coords[:, 1].max()) + 1 if count else 1
            linear = coords[:, 0] * span + coords[:, 1]
            order = np.argsort(linear, kind="stable")
            sorted_linear = linear[order]
            boundaries = np.flatnonzero(
                np.diff(sorted_linear, prepend=sorted_linear[0] - 1))
            for start, stop in zip(boundaries,
                                   list(boundaries[1:]) + [count]):
                idx = order[start:stop]
                cx, cy = coords[idx[0]]
                cells[(int(cx), int(cy))] = np.sort(idx)
        self._cells = cells
        self._epoch = world.epoch
        self.rebuilds += 1

    def _ensure_current(self) -> None:
        if self._epoch != self.world.epoch:
            self._rebuild()

    # ------------------------------------------------------------------
    def neighbor_indices_within(self, name: str, radius: float) -> np.ndarray:
        """Indices of entities within ``radius`` metres of ``name``.

        Excludes the entity itself; distances are min-clipped to
        :data:`MIN_SEPARATION_M` (so co-located entities only match when
        ``radius >= 0.1``).  Returned ascending, i.e. insertion order.
        """
        self._ensure_current()
        self.queries += 1
        world = self.world
        me = world.index_of(name)
        positions = world.positions()
        origin = positions[me]
        cell = self._cell_m
        lo_x = int(np.floor((origin[0] - radius) / cell))
        hi_x = int(np.floor((origin[0] + radius) / cell))
        lo_y = int(np.floor((origin[1] - radius) / cell))
        hi_y = int(np.floor((origin[1] + radius) / cell))
        box_cells = (hi_x - lo_x + 1) * (hi_y - lo_y + 1)
        if box_cells >= len(self._cells):
            # The radius covers (nearly) the whole world: gathering cells
            # would touch everything anyway, so scan the position array in
            # one vectorised pass.
            self.full_scans += 1
            candidates = None
            pts = positions
        else:
            cells = self._cells
            chunks = []
            for cx in range(lo_x, hi_x + 1):
                for cy in range(lo_y, hi_y + 1):
                    bucket = cells.get((cx, cy))
                    if bucket is not None:
                        chunks.append(bucket)
            if not chunks:
                return np.empty(0, dtype=np.intp)
            candidates = np.concatenate(chunks)
            pts = positions[candidates]
        delta = pts - origin
        dist = np.maximum(
            np.sqrt(np.einsum("ij,ij->i", delta, delta)), MIN_SEPARATION_M)
        mask = dist <= radius
        hits = np.flatnonzero(mask) if candidates is None else candidates[mask]
        hits = hits[hits != me]
        hits.sort()
        return hits

    def neighbors_within(self, name: str, radius: float) -> List[str]:
        """Names of entities within ``radius`` of ``name`` (insertion order).

        Byte-for-byte equivalent to
        :meth:`World.within <repro.env.world.World.within>`'s brute-force
        scan — the grid only changes how candidates are enumerated.
        """
        names = self.world.names_view()
        return [names[i] for i in self.neighbor_indices_within(name, radius)]

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, float]:
        """Counters for benchmarks and the medium's culling probe."""
        return {
            "rebuilds": self.rebuilds,
            "queries": self.queries,
            "full_scans": self.full_scans,
            "cells": len(self._cells),
            "cell_m": self._cell_m,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<SpatialGrid cells={len(self._cells)} cell={self._cell_m:.1f}m "
                f"rebuilds={self.rebuilds}>")
