"""Radio propagation in the 2.4 GHz band.

This is the quantitative core of the paper's *environment layer*: ranging,
radio interference and scaling constraints all come out of this module.
The model is deliberately classic so its shape is auditable:

* **Log-distance path loss** with reference loss at 1 m appropriate for
  2.4 GHz (≈40 dB by Friis) and a configurable exponent (2.0 free space,
  ~3.0 indoor office).
* **Log-normal shadowing**, frozen per transmitter/receiver pair so a given
  deployment has a stable radio map but different deployments differ.
* **SINR** against the thermal noise floor plus the overlap-weighted sum of
  co-channel and adjacent-channel interferers (vectorised NumPy — this is
  the hot path in E2's 64-interferer sweeps).
* **802.11b-style rates** (1, 2, 5.5, 11 Mb/s) with DSSS/CCK processing
  gain, and a frame-error-rate model built from textbook BER curves.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np
from scipy import special

from ..kernel.errors import ConfigurationError

# ---------------------------------------------------------------------------
# Unit helpers
# ---------------------------------------------------------------------------

def dbm_to_mw(dbm):
    """Convert dBm to milliwatts.

    Scalar in, native ``float`` out; arrays convert elementwise and come
    back as arrays.
    """
    if isinstance(dbm, (int, float)):
        return 10.0 ** (float(dbm) / 10.0)
    return 10.0 ** (np.asarray(dbm) / 10.0)


def mw_to_dbm(mw):
    """Convert milliwatts to dBm (clipping at a -200 dBm floor).

    Scalar in, native ``float`` out; arrays convert elementwise and come
    back as arrays.
    """
    if isinstance(mw, (int, float)):
        return 10.0 * math.log10(mw if mw > 1e-20 else 1e-20)
    mw = np.maximum(np.asarray(mw, dtype=np.float64), 1e-20)
    return 10.0 * np.log10(mw)


#: Thermal noise floor for a 22 MHz 802.11b channel: -174 dBm/Hz + 10log10(22e6)
#: + ~6 dB receiver noise figure.
NOISE_FLOOR_DBM: float = float(-174.0 + 10.0 * np.log10(22e6) + 6.0)  # ≈ -94.6 dBm

#: The same floor in linear milliwatts, precomputed for the SINR hot path.
NOISE_FLOOR_MW: float = dbm_to_mw(NOISE_FLOOR_DBM)


@dataclass(frozen=True)
class RateMode:
    """One PHY rate of the 1999-era 802.11b radio the Aroma Adapter used."""

    bits_per_second: float
    #: DSSS/CCK processing gain (chip rate 11 Mc/s over symbol rate), linear.
    processing_gain: float
    #: modulation family, selects the BER curve ("dpsk" or "cck").
    modulation: str
    name: str

    def ber(self, sinr_linear: np.ndarray) -> np.ndarray:
        """Bit error rate at the given *linear* SINR (vectorised)."""
        ebn0 = np.maximum(sinr_linear * self.processing_gain, 0.0)
        if self.modulation == "dpsk":
            # Non-coherent differential PSK: Pb = 0.5 * exp(-Eb/N0).
            return 0.5 * np.exp(-ebn0)
        # CCK approximated as coherent QPSK: Pb = Q(sqrt(2 Eb/N0)).
        return 0.5 * special.erfc(np.sqrt(np.maximum(ebn0, 0.0)))

    def fer(self, sinr_db: float, frame_bytes: int) -> float:
        """Frame error rate for a frame of ``frame_bytes`` at ``sinr_db``.

        Pure-``math`` scalar path: this runs once per decode attempt in the
        medium hot loop, where the 0-d NumPy round-trip of :meth:`ber` costs
        more than the arithmetic itself.
        """
        ebn0 = dbm_to_mw(sinr_db) * self.processing_gain  # dB -> linear
        if ebn0 < 0.0:
            ebn0 = 0.0
        if self.modulation == "dpsk":
            ber = 0.5 * math.exp(-ebn0)
        else:
            ber = 0.5 * math.erfc(math.sqrt(ebn0))
        if ber <= 0.0:
            return 0.0
        bits = 8 * int(frame_bytes)
        # log1p formulation keeps precision for tiny BERs.
        return 1.0 - math.exp(bits * math.log1p(-min(ber, 0.5)))


#: The 802.11b rate set, ordered slowest to fastest.
RATES: Tuple[RateMode, ...] = (
    RateMode(1e6, 11.0, "dpsk", "1Mbps"),
    RateMode(2e6, 5.5, "dpsk", "2Mbps"),
    RateMode(5.5e6, 2.0, "cck", "5.5Mbps"),
    RateMode(11e6, 1.0, "cck", "11Mbps"),
)

RATE_BY_NAME: Dict[str, RateMode] = {r.name: r for r in RATES}


def best_rate(sinr_db: float, frame_bytes: int = 1500,
              fer_target: float = 0.1) -> RateMode:
    """Highest rate whose FER for a ``frame_bytes`` frame meets ``fer_target``.

    Falls back to the base 1 Mb/s mode when nothing meets the target — the
    sender still has to try, and the MAC's retry logic absorbs the loss.
    """
    for mode in reversed(RATES):
        if mode.fer(sinr_db, frame_bytes) <= fer_target:
            return mode
    return RATES[0]


# ---------------------------------------------------------------------------
# Propagation
# ---------------------------------------------------------------------------

#: Shadowing values are clamped to this many sigmas.  The truncation is
#: physically innocuous (a 6-sigma log-normal tail is unobservable) and it
#: is what makes the medium's audibility culling *provably* conservative: a
#: station outside the max-audible radius can never be rescued by an
#: unbounded favourable shadowing draw.
SHADOWING_CLAMP_SIGMAS: float = 6.0

_MASK64: int = (1 << 64) - 1


def _mix64(x: int) -> int:
    """SplitMix64 finaliser: a high-quality 64-bit integer hash."""
    x &= _MASK64
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _MASK64
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _MASK64
    x ^= x >> 31
    return x


def _stable_name_hash(name: str) -> int:
    """Process-stable 64-bit hash of an entity name (``hash()`` is salted)."""
    return int.from_bytes(
        hashlib.blake2b(name.encode("utf-8"), digest_size=8).digest(), "little")


class PropagationModel:
    """Log-distance path loss with frozen log-normal shadowing.

    Shadowing is *hash-derived*: each pair's value is a pure function of
    the model's base seed and the two entity names, not of the order in
    which pairs were first queried.  That keeps a deployment's radio map
    identical no matter which links a particular run happens to evaluate
    (or skip — the medium's audibility culling depends on this), while a
    different seed still produces a different map.  Values are clamped to
    ±:data:`SHADOWING_CLAMP_SIGMAS` sigma.

    Args:
        exponent: path-loss exponent (2.0 free space, ~3.0 indoor office).
        reference_loss_db: loss at 1 m; 40 dB is the 2.4 GHz Friis value.
        shadowing_sigma_db: std-dev of per-pair log-normal shadowing.
        rng: generator used to seed the pair-keyed shadowing hash.
    """

    def __init__(self, exponent: float = 3.0, reference_loss_db: float = 40.0,
                 shadowing_sigma_db: float = 4.0,
                 rng: Optional[np.random.Generator] = None) -> None:
        if exponent < 1.0 or exponent > 6.0:
            raise ConfigurationError(f"implausible path-loss exponent {exponent}")
        if shadowing_sigma_db < 0:
            raise ConfigurationError("shadowing sigma must be non-negative")
        self.exponent = float(exponent)
        self.reference_loss_db = float(reference_loss_db)
        self.shadowing_sigma_db = float(shadowing_sigma_db)
        self._rng = rng if rng is not None else np.random.default_rng(0)
        #: one draw fixes the whole radio map; everything after is hashing.
        self._shadow_seed = int(self._rng.integers(0, _MASK64 + 1, dtype=np.uint64))
        self._shadowing: Dict[Tuple[str, str], float] = {}
        self._name_hashes: Dict[str, int] = {}

    def path_loss_db(self, distance_m: np.ndarray) -> np.ndarray:
        """Deterministic path loss in dB at ``distance_m`` (vectorised)."""
        d = np.maximum(np.asarray(distance_m, dtype=np.float64), 0.1)
        return self.reference_loss_db + 10.0 * self.exponent * np.log10(d)

    def path_loss_scalar_db(self, distance_m: float) -> float:
        """Scalar path loss in dB — the no-NumPy twin of :meth:`path_loss_db`
        used by the link cache and the single-link fast path."""
        d = distance_m if distance_m > 0.1 else 0.1
        return self.reference_loss_db + 10.0 * self.exponent * math.log10(d)

    def distance_for_path_loss_db(self, loss_db: float) -> float:
        """Inverse of :meth:`path_loss_scalar_db` (clipped to >= 0.1 m)."""
        d = 10.0 ** ((loss_db - self.reference_loss_db) / (10.0 * self.exponent))
        return d if d > 0.1 else 0.1

    def max_audible_distance_m(self, tx_power_dbm: float, floor_dbm: float,
                               margin_db: float = 0.0) -> float:
        """Largest distance at which received power can still reach
        ``floor_dbm`` — the medium's spatial-culling radius.

        Conservative by construction: the budget credits the most
        favourable shadowing the clamped model can produce
        (:data:`SHADOWING_CLAMP_SIGMAS` sigma) plus any caller-supplied
        ``margin_db`` (e.g. a fast-fading allowance), so no station beyond
        the returned distance can ever be audible.
        """
        budget = (tx_power_dbm - floor_dbm + margin_db
                  + SHADOWING_CLAMP_SIGMAS * self.shadowing_sigma_db)
        if budget <= 0.0:
            return 0.1
        return self.distance_for_path_loss_db(budget)

    def _hash_of(self, name: str) -> int:
        value = self._name_hashes.get(name)
        if value is None:
            value = _stable_name_hash(name)
            self._name_hashes[name] = value
        return value

    def shadowing_db(self, tx: str, rx: str) -> float:
        """Frozen shadowing term for the (unordered) pair ``{tx, rx}``.

        A pure function of (seed, tx, rx): evaluation order never matters,
        so a culled run and an exhaustive run see the same radio map.
        """
        sigma = self.shadowing_sigma_db
        if sigma == 0.0:
            return 0.0
        key = (tx, rx) if tx <= rx else (rx, tx)
        value = self._shadowing.get(key)
        if value is None:
            mixed = _mix64(_mix64(self._shadow_seed ^ self._hash_of(key[0]))
                           ^ self._hash_of(key[1]))
            # 53 uniform bits strictly inside (0, 1), through the normal
            # inverse CDF, clamped to the documented +-6 sigma support.
            uniform = ((mixed >> 11) + 0.5) / float(1 << 53)
            value = sigma * float(special.ndtri(uniform))
            clamp = SHADOWING_CLAMP_SIGMAS * sigma
            value = -clamp if value < -clamp else (clamp if value > clamp else value)
            self._shadowing[key] = value
        return value

    def received_power_dbm(self, tx_power_dbm: float, distance_m: float,
                           tx: str = "", rx: str = "") -> float:
        """Received power for one link, including frozen shadowing.

        Scalar fast path (no array round-trip); the medium additionally
        caches this per pair via :class:`repro.env.linkcache.LinkCache`.
        """
        loss = self.path_loss_scalar_db(distance_m)
        shadow = self.shadowing_db(tx, rx) if tx and rx else 0.0
        return tx_power_dbm - loss - shadow

    def received_power_vector(self, tx_power_dbm: np.ndarray,
                              distances_m: np.ndarray,
                              shadowing_db: Optional[np.ndarray] = None) -> np.ndarray:
        """Vectorised received power for many links at once (dBm)."""
        powers = np.asarray(tx_power_dbm, dtype=np.float64)
        loss = self.path_loss_db(distances_m)
        rx = powers - loss
        if shadowing_db is not None:
            rx = rx - np.asarray(shadowing_db, dtype=np.float64)
        return rx

    def range_for_rate(self, mode: RateMode, tx_power_dbm: float = 15.0,
                       frame_bytes: int = 1500, fer_target: float = 0.1,
                       max_range_m: float = 1000.0) -> float:
        """Largest interference-free distance sustaining ``mode``.

        Solved by bisection on the monotone FER-vs-distance curve; used by
        E3 to report the ranging table.
        """
        def ok(distance: float) -> bool:
            sinr = self.received_power_dbm(tx_power_dbm, distance) - NOISE_FLOOR_DBM
            return mode.fer(sinr, frame_bytes) <= fer_target

        if not ok(0.1):
            return 0.0
        lo, hi = 0.1, max_range_m
        if ok(hi):
            return hi
        for _ in range(60):
            mid = 0.5 * (lo + hi)
            if ok(mid):
                lo = mid
            else:
                hi = mid
        return lo


def sinr_from_mw(signal_mw: float, interference_mw: float,
                 noise_mw: float = NOISE_FLOOR_MW) -> float:
    """SINR in dB from already-linear powers (the hot-path entry point).

    The medium accumulates the interference sum in milliwatts (cached link
    gains times transmit powers), so this is one divide and one log.
    """
    ratio = signal_mw / (noise_mw + interference_mw)
    return 10.0 * math.log10(ratio if ratio > 1e-20 else 1e-20)


def interference_sum_mw(interferer_dbm: np.ndarray,
                        overlap: np.ndarray) -> float:
    """Overlap-weighted interference sum in mW — one vectorised NumPy pass
    over all interferers (E2's 64-interferer sweeps land here)."""
    return float(np.sum(10.0 ** (interferer_dbm / 10.0) * overlap))


def sinr_db(signal_dbm: float, interferer_dbm: Sequence[float],
            overlap: Optional[Sequence[float]] = None,
            noise_floor_dbm: float = NOISE_FLOOR_DBM) -> float:
    """Signal-to-interference-plus-noise ratio in dB.

    Args:
        signal_dbm: received power of the wanted transmission.
        interferer_dbm: received powers of concurrent transmissions.
        overlap: spectral overlap factor for each interferer (default 1.0,
            i.e. co-channel).
        noise_floor_dbm: thermal noise power.
    """
    interference_mw = 0.0
    interferers = np.asarray(list(interferer_dbm), dtype=np.float64)
    if interferers.size:
        factors = (np.ones_like(interferers) if overlap is None
                   else np.asarray(list(overlap), dtype=np.float64))
        if factors.shape != interferers.shape:
            raise ConfigurationError("overlap length must match interferers")
        interference_mw = interference_sum_mw(interferers, factors)
    return sinr_from_mw(dbm_to_mw(signal_dbm), interference_mw,
                        dbm_to_mw(noise_floor_dbm))
