"""Ambient acoustic environment.

The paper's environment analysis extends beyond RF: "Background noise, that
is currently acceptable, may become objectionable if voice recognition is
used" and voice devices "may be socially inappropriate in a cramped office
environment".  This module models an acoustic field — point sources with
distance attenuation on top of a diffuse floor — and a social-acceptability
predicate, feeding experiment E8 (word error rate vs ambient noise) and the
voice-badge example.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..kernel.errors import ConfigurationError
from .world import World

#: Typical ambient sound levels (dB SPL) used by examples and experiments.
TYPICAL_LEVELS_DB: Dict[str, float] = {
    "quiet_office": 40.0,
    "open_office": 55.0,
    "conversation": 60.0,
    "subway": 80.0,
    "machine_room": 85.0,
}


@dataclass
class NoiseSource:
    """A point acoustic source.

    ``level_db_at_1m`` is the sound pressure level 1 m from the source;
    propagation follows the inverse-square law (−6 dB per doubling).
    """

    name: str
    level_db_at_1m: float
    #: social source? (conversation) — relevant to the paper's point that
    #: suppressing it restricts social interaction rather than engineering.
    social: bool = False

    def level_at(self, distance_m: float) -> float:
        d = max(float(distance_m), 0.5)
        return self.level_db_at_1m - 20.0 * np.log10(d)


def combine_levels_db(levels_db: Sequence[float]) -> float:
    """Energetic (incoherent) sum of sound pressure levels in dB."""
    levels = np.asarray(list(levels_db), dtype=np.float64)
    if levels.size == 0:
        return 0.0
    return float(10.0 * np.log10(np.sum(10.0 ** (levels / 10.0))))


class AcousticField:
    """The acoustic environment layer of a deployment.

    Args:
        world: geometry shared with the radio and the devices.
        floor_db: diffuse background level present everywhere (HVAC, etc.).
    """

    def __init__(self, world: World, floor_db: float = 35.0) -> None:
        if floor_db < 0:
            raise ConfigurationError("floor_db must be non-negative")
        self.world = world
        self.floor_db = float(floor_db)
        self._sources: Dict[str, NoiseSource] = {}

    def add_source(self, source: NoiseSource, position: Sequence[float]) -> None:
        """Place a noise source in the world (placement name ``noise:<name>``)."""
        if source.name in self._sources:
            raise ConfigurationError(f"noise source {source.name!r} already present")
        self._sources[source.name] = source
        self.world.place(f"noise:{source.name}", position)

    def remove_source(self, name: str) -> None:
        # The world keeps the placement (the World API is append-only by
        # design); a removed source simply stops radiating.
        if name not in self._sources:
            raise ConfigurationError(f"unknown noise source {name!r}")
        del self._sources[name]

    def sources(self) -> List[NoiseSource]:
        return list(self._sources.values())

    def level_at(self, entity_name: str) -> float:
        """Total ambient level (dB SPL) at a placed entity's position."""
        levels = [self.floor_db]
        for src in self._sources.values():
            dist = float(self.world.distances_from(
                entity_name, [f"noise:{src.name}"])[0])
            levels.append(src.level_at(dist))
        return combine_levels_db(levels)

    def speech_snr_db(self, speaker_level_db: float, entity_name: str) -> float:
        """SNR of speech captured at ``entity_name`` against the ambient field."""
        return speaker_level_db - self.level_at(entity_name)

    def socially_appropriate(self, entity_name: str,
                             speech_level_db: float = 65.0,
                             annoyance_threshold_db: float = 10.0) -> bool:
        """Is *adding* speech at this spot socially acceptable?

        The paper notes voice control "may be socially inappropriate in a
        cramped office" — we operationalise that as: speech is inappropriate
        when it would exceed the existing ambient level by more than
        ``annoyance_threshold_db`` (it dominates the soundscape).
        """
        ambient = self.level_at(entity_name)
        return (speech_level_db - ambient) <= annoyance_threshold_db
