"""Mobility models driving entity positions over simulated time.

"The mobile nature of many pervasive computing systems ensures that the
environment's presence will determine the semantics of pervasive
computing" — mobility is what turns the environment from a constant into a
process.  Three classic models are provided:

* :class:`StaticMobility` — fixtures (projector, access point).
* :class:`LinearMobility` — deterministic walk between two points (a
  presenter walking to the podium).
* :class:`RandomWaypoint` — the standard random-waypoint model used for
  E3's ranging experiment.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..kernel.errors import ConfigurationError
from ..kernel.events import Priority
from ..kernel.scheduler import Simulator
from .world import World


class Mobility:
    """Base class: periodically updates one entity's world position."""

    def __init__(self, sim: Simulator, world: World, name: str,
                 update_interval: float = 0.5) -> None:
        if update_interval <= 0:
            raise ConfigurationError("update_interval must be positive")
        self.sim = sim
        self.world = world
        self.name = name
        self.update_interval = update_interval
        self._task = None

    def start(self) -> "Mobility":
        if self._task is None:
            self._task = self.sim.every(self.update_interval, self._tick,
                                        priority=Priority.MEDIUM)
        return self

    def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            self._task = None

    def _tick(self) -> None:
        raise NotImplementedError


class StaticMobility(Mobility):
    """No movement; provided so all entities share one interface."""

    def start(self) -> "StaticMobility":
        return self  # nothing to schedule

    def _tick(self) -> None:  # pragma: no cover - never scheduled
        pass


class LinearMobility(Mobility):
    """Move from the current position to ``target`` at ``speed`` m/s, then stop."""

    def __init__(self, sim: Simulator, world: World, name: str,
                 target: Sequence[float], speed: float = 1.4,
                 update_interval: float = 0.5) -> None:
        super().__init__(sim, world, name, update_interval)
        if speed <= 0:
            raise ConfigurationError("speed must be positive")
        self.target = np.asarray(target, dtype=np.float64)
        self.speed = float(speed)
        self.arrived = False

    def _tick(self) -> None:
        if self.arrived:
            return
        pos = self.world.position_of(self.name)
        delta = self.target - pos
        dist = float(np.hypot(delta[0], delta[1]))
        step = self.speed * self.update_interval
        if dist <= step:
            self.world.move(self.name, self.target)
            self.arrived = True
            self.stop()
        else:
            self.world.move(self.name, pos + delta * (step / dist))


class RandomWaypoint(Mobility):
    """Random-waypoint mobility: pick a uniform point, walk there, pause.

    Speeds are drawn uniformly from ``[speed_min, speed_max]`` per leg; the
    pause between legs is ``pause`` seconds.  All randomness comes from the
    simulator stream ``mobility.<name>`` so runs are reproducible and legs
    of different entities are independent.
    """

    def __init__(self, sim: Simulator, world: World, name: str,
                 speed_min: float = 0.5, speed_max: float = 2.0,
                 pause: float = 2.0, update_interval: float = 0.5) -> None:
        super().__init__(sim, world, name, update_interval)
        if not (0 < speed_min <= speed_max):
            raise ConfigurationError("need 0 < speed_min <= speed_max")
        if pause < 0:
            raise ConfigurationError("pause must be non-negative")
        self.speed_min = speed_min
        self.speed_max = speed_max
        self.pause = pause
        self._rng = sim.rng(f"mobility.{name}")
        self._target: Optional[np.ndarray] = None
        self._speed = 0.0
        self._pause_until = 0.0
        self.legs_completed = 0

    def _choose_leg(self) -> None:
        self._target = np.array([
            self._rng.uniform(0, self.world.width),
            self._rng.uniform(0, self.world.height),
        ])
        self._speed = float(self._rng.uniform(self.speed_min, self.speed_max))

    def _tick(self) -> None:
        if self.sim.now < self._pause_until:
            return
        if self._target is None:
            self._choose_leg()
        pos = self.world.position_of(self.name)
        delta = self._target - pos
        dist = float(np.hypot(delta[0], delta[1]))
        step = self._speed * self.update_interval
        if dist <= step:
            self.world.move(self.name, self._target)
            self._target = None
            self.legs_completed += 1
            self._pause_until = self.sim.now + self.pause
        else:
            self.world.move(self.name, pos + delta * (step / dist))
