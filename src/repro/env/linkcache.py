"""Topology-epoch-keyed cache of link geometry for the radio medium.

The SINR hot path asks the same question over and over: *what does station
``rx`` hear when ``tx`` transmits?*  For a stationary deployment the answer
— path loss over the pair distance plus the frozen log-normal shadowing
term — never changes, yet the seed code recomputed it for every frame and
every interferer.  :class:`LinkCache` memoises the per-pair terms and keys
the whole cache on the :attr:`~repro.env.world.World.epoch` counter, which
the world bumps on every ``place``/``move``.  Stationary rooms compute link
geometry exactly once; mobile rooms pay one recompute per mobility step,
never per frame.

Invalidation rule (documented in ``docs/performance.md``): the cache is
valid exactly while ``world.epoch`` is unchanged.  Any placement or move
invalidates *everything* — coarse, but checking one integer per lookup is
what keeps the hit path to a dict probe.

Loss and shadowing are stored separately so a cached
``rx_power_dbm`` is bit-identical to the uncached
``tx_power - loss - shadow`` evaluation order of
:meth:`~repro.env.radio.PropagationModel.received_power_dbm`.
"""

from __future__ import annotations

from typing import Dict, Tuple

from .radio import PropagationModel
from .world import World


class LinkCache:
    """Per-pair link attenuation, invalidated by world topology epoch.

    Both terms are symmetric (distance and frozen shadowing), so pairs are
    keyed unordered and each link is computed once per epoch.
    """

    __slots__ = ("world", "propagation", "_epoch", "_links",
                 "hits", "misses", "invalidations")

    def __init__(self, world: World, propagation: PropagationModel) -> None:
        self.world = world
        self.propagation = propagation
        self._epoch = world.epoch
        #: unordered (a, b) -> (path_loss_db, shadowing_db)
        self._links: Dict[Tuple[str, str], Tuple[float, float]] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    # ------------------------------------------------------------------
    def _terms(self, a: str, b: str) -> Tuple[float, float]:
        epoch = self.world.epoch
        if epoch != self._epoch:
            self._links.clear()
            self._epoch = epoch
            self.invalidations += 1
        key = (a, b) if a <= b else (b, a)
        terms = self._links.get(key)
        if terms is None:
            self.misses += 1
            prop = self.propagation
            terms = (prop.path_loss_scalar_db(self.world.distance_between(a, b)),
                     prop.shadowing_db(a, b))
            self._links[key] = terms
        else:
            self.hits += 1
        return terms

    def rx_power_dbm(self, tx_power_dbm: float, tx: str, rx: str) -> float:
        """Received power in dBm over the cached link."""
        loss, shadow = self._terms(tx, rx)
        return tx_power_dbm - loss - shadow

    def attenuation_db(self, a: str, b: str) -> float:
        """Total attenuation (path loss + shadowing) for the pair ``{a, b}``."""
        loss, shadow = self._terms(a, b)
        return loss + shadow

    # ------------------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when never queried)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        """Counters for benchmarks and ``BENCH_*.json`` reporting."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate,
            "cached_links": len(self._links),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<LinkCache epoch={self._epoch} links={len(self._links)} "
                f"hit_rate={self.hit_rate:.2f}>")
