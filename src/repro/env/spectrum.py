"""The 2.4 GHz ISM band: channels and co-channel interference coupling.

The paper's Aroma Adapter "communicates via a 2.4 GHz wireless LAN PCMCIA
card" and its environment analysis worries that "there are many wireless
devices operating in the 2.4 GHz radio band, and the effect of a high
concentration of these devices needs to be studied" — experiment E2 studies
exactly that, and this module provides the spectral-overlap physics.

802.11 DSSS channels in the 2.4 GHz band are 5 MHz apart with ~22 MHz
occupied bandwidth, so adjacent channels partially overlap.  We model the
interference coupling between channels ``i`` and ``j`` as a triangular
roll-off in channel separation, reaching zero at a separation of 5
channels — the classic reason channels 1/6/11 are the only "orthogonal"
set.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..kernel.errors import ConfigurationError

#: Valid 802.11 b channel numbers in the 2.4 GHz band (US allocation).
CHANNELS: range = range(1, 12)

#: Channel separation (in channel numbers) at which overlap reaches zero.
ORTHOGONAL_SEPARATION: int = 5

#: The classic non-overlapping channel plan.
NON_OVERLAPPING: tuple = (1, 6, 11)


def center_frequency_mhz(channel: int) -> float:
    """Centre frequency of a 2.4 GHz channel in MHz (2412 + 5*(ch-1))."""
    validate_channel(channel)
    return 2412.0 + 5.0 * (channel - 1)


def validate_channel(channel: int) -> int:
    if channel not in CHANNELS:
        raise ConfigurationError(
            f"channel {channel!r} outside 2.4 GHz band plan {CHANNELS.start}..{CHANNELS.stop - 1}")
    return channel


_OVERLAP_MEMO: dict = {}


def overlap_factor(channel_a: int, channel_b: int) -> float:
    """Fraction of channel_b's power that lands in channel_a's passband.

    1.0 for co-channel, linearly decreasing to 0.0 at a separation of
    :data:`ORTHOGONAL_SEPARATION` channels.  Symmetric.  Memoised — the
    medium asks for the same few pairs once per carrier-sense poll and per
    interferer, and the band plan has at most 121 of them.
    """
    factor = _OVERLAP_MEMO.get((channel_a, channel_b))
    if factor is None:
        validate_channel(channel_a)
        validate_channel(channel_b)
        separation = abs(channel_a - channel_b)
        factor = max(0.0, 1.0 - separation / ORTHOGONAL_SEPARATION)
        _OVERLAP_MEMO[(channel_a, channel_b)] = factor
    return factor


def overlap_matrix(channels: Iterable[int]) -> np.ndarray:
    """Pairwise overlap factors for a sequence of channels (vectorised)."""
    chans = np.asarray(list(channels), dtype=np.int64)
    for c in chans:
        validate_channel(int(c))
    sep = np.abs(chans[:, None] - chans[None, :])
    return np.maximum(0.0, 1.0 - sep / ORTHOGONAL_SEPARATION)


def least_congested(channel_loads: dict) -> int:
    """Pick the channel with the least *effective* load, accounting for
    adjacent-channel leakage.

    Args:
        channel_loads: mapping channel -> offered load (any consistent unit).

    Returns the channel from the full band plan minimising the
    overlap-weighted sum of loads; ties break toward the lowest channel so
    the choice is deterministic.
    """
    candidates = list(CHANNELS)
    loads = np.zeros(len(candidates))
    for i, cand in enumerate(candidates):
        total = 0.0
        for ch, load in channel_loads.items():
            total += overlap_factor(cand, ch) * float(load)
        loads[i] = total
    return candidates[int(np.argmin(loads))]
