"""The environment layer: geometry, mobility, RF propagation, acoustics.

The paper's first structural claim is that pervasive computing needs an
explicit environment layer *below* the physical layer.  This package is
that layer: everything here exists independently of any device, and the
physical layer (:mod:`repro.phys`) must cope with it rather than engineer
it away.
"""

from .linkcache import LinkCache
from .mobility import LinearMobility, Mobility, RandomWaypoint, StaticMobility
from .noise import (
    TYPICAL_LEVELS_DB,
    AcousticField,
    NoiseSource,
    combine_levels_db,
)
from .radio import (
    NOISE_FLOOR_DBM,
    NOISE_FLOOR_MW,
    RATE_BY_NAME,
    RATES,
    SHADOWING_CLAMP_SIGMAS,
    PropagationModel,
    RateMode,
    best_rate,
    dbm_to_mw,
    interference_sum_mw,
    mw_to_dbm,
    sinr_db,
    sinr_from_mw,
)
from .spatialindex import SpatialGrid
from .spectrum import (
    CHANNELS,
    NON_OVERLAPPING,
    ORTHOGONAL_SEPARATION,
    center_frequency_mhz,
    least_congested,
    overlap_factor,
    overlap_matrix,
    validate_channel,
)
from .world import Placement, World

__all__ = [
    "AcousticField",
    "CHANNELS",
    "LinearMobility",
    "LinkCache",
    "Mobility",
    "NOISE_FLOOR_DBM",
    "NOISE_FLOOR_MW",
    "NON_OVERLAPPING",
    "NoiseSource",
    "ORTHOGONAL_SEPARATION",
    "Placement",
    "PropagationModel",
    "RATES",
    "RATE_BY_NAME",
    "RandomWaypoint",
    "RateMode",
    "SHADOWING_CLAMP_SIGMAS",
    "SpatialGrid",
    "StaticMobility",
    "TYPICAL_LEVELS_DB",
    "World",
    "best_rate",
    "center_frequency_mhz",
    "combine_levels_db",
    "dbm_to_mw",
    "interference_sum_mw",
    "least_congested",
    "mw_to_dbm",
    "overlap_factor",
    "overlap_matrix",
    "sinr_db",
    "sinr_from_mw",
    "validate_channel",
]
