"""Partition a :class:`~repro.env.world.World` into radio cells.

The conceptual model scopes interactions physically: a station can only
affect stations inside its audible radius, so the *transitive closure*
of the audibility relation decomposes the world into cells that never
exchange a single frame.  :func:`partition_world` computes those cells
(union-find over :class:`~repro.env.spatialindex.SpatialGrid` range
queries) and :func:`assign_cells` packs them onto a fixed number of
shards for :class:`repro.kernel.shard.ShardedSimulator`.

Everything here is deterministic and order-stable: cells are labelled by
their lowest world index, members listed in world (placement) order, and
the shard packing is longest-processing-time with index tie-breaks — the
same inputs always produce the same plan, in any process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..kernel.errors import ConfigurationError
from .spatialindex import SpatialGrid
from .world import World


@dataclass(frozen=True)
class PartitionPlan:
    """Audibility-closed cells of one world, plus their shard packing.

    ``cells[i]`` holds the station names of cell ``i`` in world placement
    order; cells are ordered by their lowest member index.  ``shard_of``
    maps a cell index to its shard, and ``shards[s]`` lists the cell
    indices packed onto shard ``s`` (ascending).
    """

    radius_m: float
    cells: Tuple[Tuple[str, ...], ...]
    shards: Tuple[Tuple[int, ...], ...]

    @property
    def cell_of(self) -> Dict[str, int]:
        return {name: i for i, cell in enumerate(self.cells)
                for name in cell}

    @property
    def shard_of(self) -> Dict[int, int]:
        return {cell: s for s, cells in enumerate(self.shards)
                for cell in cells}

    def stations_of_shard(self, shard: int) -> List[str]:
        """All station names on ``shard``, in world placement order."""
        world_order: List[str] = []
        for cell in self.shards[shard]:
            world_order.extend(self.cells[cell])
        return world_order

    def summary(self) -> Dict[str, object]:
        sizes = [len(cell) for cell in self.cells]
        loads = [sum(len(self.cells[c]) for c in cells)
                 for cells in self.shards]
        return {
            "radius_m": self.radius_m,
            "cells": len(self.cells),
            "cell_sizes": sizes,
            "shards": len(self.shards),
            "shard_loads": loads,
            "imbalance": (max(loads) / (sum(loads) / len(loads))
                          if loads and sum(loads) else 1.0),
        }


def _components(world: World, radius_m: float) -> List[List[int]]:
    """Connected components of the audibility graph, as index lists.

    Union-find over one grid range query per station.  The radius is the
    *conservative* audible radius (clamped shadowing + fade margin, see
    ``WirelessMedium.max_audible_radius_m``), so two stations in
    different components provably never hear each other.
    """
    names = world.names_view()
    n = len(names)
    parent = list(range(n))

    def find(i: int) -> int:
        root = i
        while parent[root] != root:
            root = parent[root]
        while parent[i] != root:          # path compression
            parent[i], i = root, parent[i]
        return root

    grid = SpatialGrid(world)
    for i, name in enumerate(names):
        for j in grid.neighbor_indices_within(name, radius_m):
            a, b = find(i), find(int(j))
            if a != b:
                # Union by lower root so labels stay index-stable.
                if a < b:
                    parent[b] = a
                else:
                    parent[a] = b
    groups: Dict[int, List[int]] = {}
    for i in range(n):
        groups.setdefault(find(i), []).append(i)
    # Roots are minimal member indices, so sorting roots orders cells by
    # first placement; members are already ascending.
    return [groups[root] for root in sorted(groups)]


def _pack(sizes: Sequence[int], shards: int) -> List[List[int]]:
    """LPT bin packing: largest cell first onto the least-loaded shard.

    Ties break on lowest cell index (order) and lowest shard id (target),
    so the packing is a pure function of the size list.
    """
    order = sorted(range(len(sizes)), key=lambda c: (-sizes[c], c))
    loads = [0] * shards
    out: List[List[int]] = [[] for _ in range(shards)]
    for cell in order:
        target = min(range(shards), key=lambda s: (loads[s], s))
        out[target].append(cell)
        loads[target] += sizes[cell]
    for cells in out:
        cells.sort()
    return out


def partition_world(world: World, radius_m: float, *,
                    shards: int = 1) -> PartitionPlan:
    """Cells (audibility-closed components at ``radius_m``) + packing.

    Raises :class:`ConfigurationError` on a non-positive radius or shard
    count, or when the world is empty — an empty plan is always a
    configuration mistake, never a useful run.
    """
    if radius_m <= 0:
        raise ConfigurationError(
            f"audible radius must be positive, got {radius_m!r}")
    if shards < 1:
        raise ConfigurationError(f"need at least one shard, got {shards!r}")
    if len(world) == 0:
        raise ConfigurationError("cannot partition an empty world")
    names = world.names_view()
    cells = tuple(tuple(names[i] for i in component)
                  for component in _components(world, radius_m))
    packed = tuple(tuple(cells_of) for cells_of in
                   _pack([len(cell) for cell in cells], shards))
    return PartitionPlan(radius_m=float(radius_m), cells=cells,
                         shards=packed)


def assign_cells(cells: Sequence[Sequence[str]],
                 shards: int) -> Tuple[Tuple[int, ...], ...]:
    """Pack pre-computed cells onto ``shards`` shards (LPT, deterministic)."""
    if shards < 1:
        raise ConfigurationError(f"need at least one shard, got {shards!r}")
    return tuple(tuple(cells_of) for cells_of in
                 _pack([len(cell) for cell in cells], shards))
