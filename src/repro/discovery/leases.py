"""Leases: time-bounded grants that make the middleware self-healing.

Jini's central insight — adopted wholesale by the Aroma design — is that
every grant (a registration, an event subscription, a session) expires
unless actively renewed.  The paper's abstract-layer analysis asks for
"mechanisms ... to deal with users who forget to relinquish control of the
projector without relying on a system administrator to intervene"; leases
are that mechanism, and experiment E4 measures how the lease duration
bounds recovery time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..kernel.errors import ConfigurationError, LeaseError
from ..kernel.events import Priority
from ..kernel.scheduler import Simulator

def _fire_sweep(_owner: int, table: "LeaseTable") -> None:
    """Batched sweep-timer callback (module-level so every table shares
    one ``lease.sweep`` class; see repro.kernel.batchq)."""
    table._sweep_fire()


@dataclass
class Lease:
    """One time-bounded grant."""

    lease_id: int
    holder: str          #: address/name of the grantee
    resource: str        #: what is leased (service id, session key...)
    granted_at: float
    duration: float
    expires_at: float
    cancelled: bool = False

    def remaining(self, now: float) -> float:
        return max(0.0, self.expires_at - now)

    def expired(self, now: float) -> bool:
        return self.cancelled or now >= self.expires_at


class LeaseTable:
    """Grants, renewals, cancellations and expiry sweeping for one granter.

    Args:
        sim: simulator (clock + sweep scheduling).
        name: granter name for traces.
        max_duration: longest lease the granter will give (requests are
            clamped, Jini-style).
        on_expired: ``callback(lease)`` fired when a sweep removes a lease.
        sweep_interval: how often to look for expired leases.
    """

    def __init__(self, sim: Simulator, name: str = "leases",
                 max_duration: float = 300.0,
                 on_expired: Optional[Callable[[Lease], None]] = None,
                 sweep_interval: float = 1.0) -> None:
        if max_duration <= 0 or sweep_interval <= 0:
            raise ConfigurationError("durations must be positive")
        self.sim = sim
        self.name = name
        self.max_duration = max_duration
        self.on_expired = on_expired
        self._leases: Dict[int, Lease] = {}
        self.granted_count = 0
        self.renewed_count = 0
        self.expired_count = 0
        # Lease churn aggregated across every table on the simulator —
        # the "how much self-healing is going on" health signal.
        metrics = sim.metrics
        self._m_granted = metrics.counter("leases.granted")
        self._m_renewed = metrics.counter("leases.renewed")
        self._m_expired = metrics.counter("leases.expired")
        self._m_cancelled = metrics.counter("leases.cancelled")
        # The periodic expiry sweep rides the kernel's batched timer path:
        # one shared ``lease.sweep`` class per simulator, self-rescheduling
        # with the same (time, priority, seq) consumption a PeriodicTask
        # would have (one event per period, re-armed after the sweep body).
        self._sweep_interval = sweep_interval
        self._sweep_stopped = False
        self._sweep_q = sim.batch_class("lease.sweep", _fire_sweep,
                                        priority=int(Priority.PROTOCOL),
                                        cancellable=True, shared=True)
        # Pre-bound handler table: resolve the batch queue's schedule
        # method once so each re-arm is a plain call, not an attribute walk.
        self._schedule_sweep = self._sweep_q.schedule
        self._sweep_handle = self._schedule_sweep(sweep_interval,
                                                  payload=self)

    # ------------------------------------------------------------------
    def grant(self, holder: str, resource: str, duration: float) -> Lease:
        """Grant a lease, clamping the requested duration."""
        if duration <= 0:
            raise LeaseError(f"non-positive lease duration {duration!r}")
        duration = min(duration, self.max_duration)
        now = self.sim.now
        lease = Lease(self.sim.next_seq("discovery.lease_seq"),
                      holder, resource, now, duration,
                      now + duration)
        self._leases[lease.lease_id] = lease
        self.granted_count += 1
        self._m_granted.add()
        self.sim.trace("lease.grant", self.name,
                       f"lease {lease.lease_id} -> {holder} for {resource} "
                       f"({duration:.0f}s)")
        return lease

    def renew(self, lease_id: int, duration: Optional[float] = None) -> Lease:
        """Extend a live lease; raises :class:`LeaseError` if unknown/expired."""
        lease = self._leases.get(lease_id)
        if lease is None or lease.expired(self.sim.now):
            raise LeaseError(f"lease {lease_id} unknown or expired")
        duration = min(duration if duration is not None else lease.duration,
                       self.max_duration)
        lease.duration = duration
        lease.expires_at = self.sim.now + duration
        self.renewed_count += 1
        self._m_renewed.add()
        return lease

    def cancel(self, lease_id: int) -> Lease:
        """Explicitly relinquish; the well-behaved-user path."""
        lease = self._leases.pop(lease_id, None)
        if lease is None:
            raise LeaseError(f"lease {lease_id} unknown")
        lease.cancelled = True
        self._m_cancelled.add()
        return lease

    def get(self, lease_id: int) -> Optional[Lease]:
        return self._leases.get(lease_id)

    def holder_of(self, resource: str) -> Optional[Lease]:
        """The live lease on ``resource``, if any."""
        now = self.sim.now
        for lease in self._leases.values():
            if lease.resource == resource and not lease.expired(now):
                return lease
        return None

    # ------------------------------------------------------------------
    def sweep(self) -> List[Lease]:
        """Remove expired leases, firing ``on_expired`` for each."""
        now = self.sim.now
        dead = [l for l in self._leases.values() if l.expired(now)]
        for lease in dead:
            del self._leases[lease.lease_id]
            self.expired_count += 1
            self._m_expired.add()
            self.sim.trace("lease.expire", self.name,
                           f"lease {lease.lease_id} of {lease.holder} on "
                           f"{lease.resource} expired")
            if self.on_expired is not None:
                self.on_expired(lease)
        return dead

    def live(self) -> List[Lease]:
        now = self.sim.now
        return [l for l in self._leases.values() if not l.expired(now)]

    def _sweep_fire(self) -> None:
        if self._sweep_stopped:
            return
        self.sweep()
        if not self._sweep_stopped and not self.sim.stopped:
            self._sweep_handle = self._schedule_sweep(
                self._sweep_interval, payload=self)

    def stop(self) -> None:
        self._sweep_stopped = True
        if self._sweep_handle is not None:
            self._sweep_handle.cancel()
            self._sweep_handle = None

    def __len__(self) -> int:
        return len(self._leases)
