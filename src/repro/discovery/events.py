"""Remote events: asynchronous service-change notifications.

Jini's ``RemoteEvent`` mechanism, as the paper's abstract-layer analysis
needs it: "if the Smart Projector's services are currently not available,
the icons on the user's desktop should change their appearance
accordingly" — that UI behaviour is driven by exactly these notifications.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Set

from ..kernel.scheduler import Simulator
from .records import ServiceItem

#: Event kinds a lookup service emits.
ADDED = "added"
REMOVED = "removed"
EXPIRED = "expired"

@dataclass(frozen=True)
class RemoteEvent:
    """One notification about a matched service transition."""

    sequence: int
    kind: str            #: ADDED / REMOVED / EXPIRED
    item: ServiceItem
    registration_id: int  #: the notify registration this event belongs to

    @property
    def wire_bytes(self) -> int:
        return 32 + self.item.wire_bytes - self.item.proxy.code_bytes


def next_event_sequence(sim: Simulator) -> int:
    """Per-simulator event sequence (was a module-global counter —
    the LPC301 cross-run/fork leak class)."""
    return sim.next_seq("discovery.event_seq")


class EventMailbox:
    """Client-side event receiver with duplicate suppression.

    The transport may deliver an event twice (lost ACKs cause sender
    retries); the mailbox deduplicates by sequence number, and reports
    gaps so callers can resynchronise with a fresh lookup — the same
    contract Jini gives its listeners.
    """

    def __init__(self, on_event: Callable[[RemoteEvent], None]) -> None:
        self.on_event = on_event
        self._seen: Set[int] = set()
        self._highest: Dict[int, int] = {}  # registration -> highest sequence
        self.delivered = 0
        self.duplicates = 0
        self.gaps_detected = 0

    def deliver(self, event: RemoteEvent) -> bool:
        """Process one inbound event; returns False for duplicates."""
        if event.sequence in self._seen:
            self.duplicates += 1
            return False
        self._seen.add(event.sequence)
        highest = self._highest.get(event.registration_id)
        if highest is not None and event.sequence > highest + 1:
            # Sequence gap: some earlier event never arrived.
            self.gaps_detected += 1
        self._highest[event.registration_id] = max(
            highest or 0, event.sequence)
        self.delivered += 1
        self.on_event(event)
        return True
