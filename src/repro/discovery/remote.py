"""Home-shard routing for discovery traffic across a sharded run.

When the world is partitioned (:mod:`repro.kernel.shard`), the lookup
service lives on exactly one shard — its *home* — just as the paper's
lookup infrastructure lives on one hub machine.  Stations on other
shards still need to register services, renew leases and run lookups;
:class:`RegistryBridge` carries those round-trips over the shard
boundary channels instead of reaching into the remote simulator (which
rule ``LPC108`` forbids).

The bridge models the wired backhaul between cells: each request takes
(at least) one lookahead of latency to reach the home registry, and the
answer takes another to come back — discovery across a cell boundary is
*slower* than local discovery, which is exactly the paper's argument for
cell-local infrastructure.  Requests execute on the home shard at their
effect time against the real :class:`~repro.discovery.registry
.LookupService`; responses carry only plain data
(:class:`RemoteLease`, :class:`~repro.discovery.records.ServiceItem`
tuples), never live objects with simulator references.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..kernel.errors import ConfigurationError
from ..kernel.shard import ShardPorts
from .records import ServiceItem, ServiceTemplate

REQUEST_CHANNEL = "discovery.req"
RESPONSE_CHANNEL = "discovery.rsp"


@dataclass(frozen=True)
class RemoteLease:
    """A lease as seen from a remote shard: plain numbers, no table ref.

    Renew/cancel go back through the bridge by ``lease_id``; the times
    let the remote side schedule its renewals locally.
    """

    lease_id: int
    granted_at: float
    duration: float
    expires_at: float


class RegistryBridge:
    """One endpoint of the cross-shard discovery channel.

    Constructed with a ``registry`` it is the *home* side: it opens the
    request channel and serves register/renew/cancel/lookup against the
    co-located :class:`~repro.discovery.registry.LookupService`.
    Constructed without one it is a *client*: it opens the response
    channel and exposes the same four verbs, each taking an optional
    ``callback`` invoked with the (plain-data) result two lookaheads
    later.
    """

    def __init__(self, ports: ShardPorts, *, registry: Any = None,
                 home_shard: Optional[int] = None) -> None:
        self.ports = ports
        self.registry = registry
        self.requests_served = 0
        self.responses_received = 0
        if registry is not None:
            self.home_shard = ports.shard_id
            ports.open(REQUEST_CHANNEL, self._serve)
        else:
            if home_shard is None:
                raise ConfigurationError(
                    "a client-side RegistryBridge needs the home shard id")
            if home_shard == ports.shard_id:
                raise ConfigurationError(
                    "this shard IS the home shard — pass the registry "
                    "instead of routing to ourselves")
            self.home_shard = home_shard
            self._seq = 0
            self._waiting: Dict[int, Optional[Callable[[Any], None]]] = {}
            ports.open(RESPONSE_CHANNEL, self._on_response)

    # ------------------------------------------------------------------
    # Client verbs (remote shards)
    # ------------------------------------------------------------------
    def register(self, item: ServiceItem, lease_duration: float,
                 callback: Optional[Callable[[RemoteLease], None]] = None,
                 ) -> None:
        self._request(("register", item, lease_duration), callback)

    def renew(self, lease_id: int, duration: Optional[float] = None,
              callback: Optional[Callable[[RemoteLease], None]] = None,
              ) -> None:
        self._request(("renew", lease_id, duration), callback)

    def cancel(self, lease_id: int,
               callback: Optional[Callable[[Any], None]] = None) -> None:
        self._request(("cancel", lease_id), callback)

    def lookup(self, template: ServiceTemplate, max_matches: int = 16,
               callback: Optional[Callable[[Tuple[ServiceItem, ...]],
                                           None]] = None) -> None:
        self._request(("lookup", template, max_matches), callback)

    def _request(self, request: Tuple[Any, ...],
                 callback: Optional[Callable[[Any], None]]) -> None:
        if self.registry is not None:
            raise ConfigurationError(
                "home-side bridge serves requests, it does not send them — "
                "call the co-located registry directly")
        self._seq += 1
        self._waiting[self._seq] = callback
        self.ports.send(REQUEST_CHANNEL, dst=self.home_shard,
                        payload=(self._seq, request))

    def _on_response(self, src: int, payload: Tuple[int, Any]) -> None:
        req_id, result = payload
        self.responses_received += 1
        callback = self._waiting.pop(req_id, None)
        if callback is not None:
            callback(result)

    # ------------------------------------------------------------------
    # Home side
    # ------------------------------------------------------------------
    def _serve(self, src: int, payload: Tuple[int, Tuple[Any, ...]]) -> None:
        req_id, request = payload
        op = request[0]
        registry = self.registry
        if op == "register":
            _, item, lease_duration = request
            lease = registry.register(item, lease_duration)
            result: Any = RemoteLease(lease.lease_id, lease.granted_at,
                                      lease.duration, lease.expires_at)
        elif op == "renew":
            _, lease_id, duration = request
            lease = registry.renew(lease_id, duration)
            result = RemoteLease(lease.lease_id, lease.granted_at,
                                 lease.duration, lease.expires_at)
        elif op == "cancel":
            registry.cancel(request[1])
            result = True
        elif op == "lookup":
            _, template, max_matches = request
            result = tuple(registry.lookup(template, max_matches))
        else:
            raise ConfigurationError(f"unknown discovery op {op!r}")
        self.requests_served += 1
        self.ports.send(RESPONSE_CHANNEL, dst=src, payload=(req_id, result))
