"""Multicast discovery of the lookup service itself.

Before anything can be looked up, clients must find the registrar.  The
Jini discovery protocol has two halves, both modelled here:

* **announcement** — the registrar periodically multicasts its locator;
* **request** — an impatient client multicasts a request and the registrar
  unicasts its locator back.

Both ride :class:`repro.net.multicast.MulticastService` datagrams, which
ride broadcast frames, which are *unacknowledged* — so discovery latency
degrades with radio loss, which is exactly what experiment E4 sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..kernel.errors import ConfigurationError
from ..kernel.scheduler import Simulator

#: Multicast group for registrar announcements.
ANNOUNCE_GROUP = "jini.announce"
#: Multicast group for client discovery requests.
REQUEST_GROUP = "jini.request"

ANNOUNCEMENT_BYTES = 96
REQUEST_BYTES = 48


@dataclass(frozen=True)
class RegistryLocator:
    """Enough information to reach a lookup service."""

    registry_id: str
    address: str
    port: int


@dataclass(frozen=True)
class DiscoveryRequest:
    requester: str


class AnnouncingRegistry:
    """Server side: periodic announcements + responses to requests."""

    def __init__(self, sim: Simulator, device, locator: RegistryLocator,
                 announce_interval: float = 10.0) -> None:
        if announce_interval <= 0:
            raise ConfigurationError("announce interval must be positive")
        self.sim = sim
        self.device = device
        self.locator = locator
        self.announce_interval = announce_interval
        self.announcements = 0
        self.request_replies = 0
        device.multicast.join(REQUEST_GROUP, self._on_request)
        # First announcement goes out promptly, then periodically.
        self._task = sim.every(announce_interval, self.announce, start=0.05)

    def announce(self) -> None:
        self.announcements += 1
        self.device.multicast.send(ANNOUNCE_GROUP, self.locator,
                                   ANNOUNCEMENT_BYTES)

    def _on_request(self, src: str, data) -> None:
        if not isinstance(data, DiscoveryRequest):
            return
        self.request_replies += 1
        # Unicast the locator straight back (still best-effort datagram).
        self.device.stack.send(data.requester, self.locator,
                               ANNOUNCEMENT_BYTES, port=_UNICAST_LOCATOR_PORT,
                               kind="mgmt")

    def stop(self) -> None:
        self._task.cancel()


#: Port unicast locator replies arrive on at the client.
_UNICAST_LOCATOR_PORT: int = 9


class DiscoveryAgent:
    """Client side: listens for announcements and can actively probe.

    ``on_found(locator)`` fires once per distinct registry (re-announcements
    refresh the freshness timestamp silently).
    """

    def __init__(self, sim: Simulator, device,
                 probe_interval: float = 1.0, max_probes: int = 10) -> None:
        if probe_interval <= 0 or max_probes < 1:
            raise ConfigurationError("bad probe parameters")
        self.sim = sim
        self.device = device
        self.probe_interval = probe_interval
        self.max_probes = max_probes
        self.known: Dict[str, RegistryLocator] = {}
        self.freshness: Dict[str, float] = {}
        self.discovery_times: Dict[str, float] = {}
        self._listeners: List[Callable[[RegistryLocator], None]] = []
        self._probe_task = None
        self._probes_sent = 0
        self._started_at: Optional[float] = None
        device.multicast.join(ANNOUNCE_GROUP, self._on_announcement)
        device.stack.bind(_UNICAST_LOCATOR_PORT, self._on_unicast_locator)

    # ------------------------------------------------------------------
    def on_found(self, callback: Callable[[RegistryLocator], None]) -> None:
        self._listeners.append(callback)
        for locator in self.known.values():
            callback(locator)

    def discover(self) -> None:
        """Actively probe for registrars (bounded retries)."""
        if self._probe_task is not None:
            return
        self._started_at = self.sim.now
        self._probes_sent = 0
        self._probe_task = self.sim.every(self.probe_interval, self._probe,
                                          start=0.0)

    def _probe(self) -> None:
        if self._probes_sent >= self.max_probes or self.known:
            self.stop_probing()
            return
        self._probes_sent += 1
        self.device.multicast.send(REQUEST_GROUP,
                                   DiscoveryRequest(self.device.name),
                                   REQUEST_BYTES)

    def stop_probing(self) -> None:
        if self._probe_task is not None:
            self._probe_task.cancel()
            self._probe_task = None

    # ------------------------------------------------------------------
    def _on_announcement(self, src: str, data) -> None:
        if isinstance(data, RegistryLocator):
            self._learn(data)

    def _on_unicast_locator(self, frame) -> None:
        if isinstance(frame.payload, RegistryLocator):
            self._learn(frame.payload)

    def _learn(self, locator: RegistryLocator) -> None:
        fresh = locator.registry_id not in self.known
        self.known[locator.registry_id] = locator
        self.freshness[locator.registry_id] = self.sim.now
        if fresh:
            started = self._started_at if self._started_at is not None else 0.0
            self.discovery_times[locator.registry_id] = self.sim.now - started
            self.sim.trace("discovery.found", self.device.name,
                           f"found registry {locator.registry_id} at "
                           f"{locator.address}")
            for callback in list(self._listeners):
                callback(locator)

    def stale(self, max_age: float) -> List[str]:
        """Registries not heard from within ``max_age`` seconds."""
        now = self.sim.now
        return [rid for rid, t in self.freshness.items() if now - t > max_age]

    def forget(self, registry_id: str) -> None:
        self.known.pop(registry_id, None)
        self.freshness.pop(registry_id, None)
