"""Client-side discovery machinery: the Jini ``ServiceDiscoveryManager``
analog.

One :class:`ServiceDiscoveryClient` per device gives it everything the
Smart Projector scenario needs:

* find registrars (passive announcements + active probes);
* register services with **automatic lease renewal** — the provider-side
  half of the self-healing the paper asks for;
* look up services by template;
* subscribe to remote events with a deduplicating mailbox.

All request/reply traffic is correlated by request id over the reliable
transport; timeouts surface as ``None`` replies so callers can retry or
give up — visible behaviour, not hidden hangs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..kernel.errors import ConfigurationError, DiscoveryError
from ..kernel.scheduler import Simulator
from .events import EventMailbox, RemoteEvent
from .protocol import DiscoveryAgent, RegistryLocator
from .records import ServiceItem, ServiceTemplate
from .registry import (
    EVENT_PORT,
    REGISTRY_PORT,
    CancelRequest,
    LookupRequest,
    NotifyRequest,
    RegisterRequest,
    RenewRequest,
    Reply,
    new_request_id,
)

#: Fraction of a lease's duration after which the renewer renews.
RENEW_FRACTION = 0.45


def _fire_timeout(request_id: int, client: "ServiceDiscoveryClient") -> None:
    """Batched request-timeout callback (shared ``discovery.timeout``
    class; the owner column carries the request id)."""
    client._timeout(request_id)


def _fire_renewal(_owner: int, pack: tuple) -> None:
    """Batched lease-renewal callback: ``pack`` is (bound renew method,
    registration-or-subscription handle)."""
    fn, handle = pack
    fn(handle)


@dataclass
class ServiceRegistration:
    """Handle for one auto-renewed registration."""

    item: ServiceItem
    locator: RegistryLocator
    lease_id: Optional[int] = None
    lease_duration: float = 0.0
    active: bool = False
    renewals: int = 0
    failures: int = 0
    _renew_event: Any = field(default=None, repr=False)


@dataclass
class Subscription:
    """Handle for one auto-renewed event subscription."""

    template: ServiceTemplate
    locator: RegistryLocator
    lease_id: Optional[int] = None
    lease_duration: float = 0.0
    active: bool = False
    _renew_event: Any = field(default=None, repr=False)


class ServiceDiscoveryClient:
    """Discovery, lookup, registration and eventing for one device."""

    def __init__(self, sim: Simulator, device,
                 request_timeout: float = 2.0) -> None:
        if request_timeout <= 0:
            raise ConfigurationError("request timeout must be positive")
        if device.stack is None:
            raise ConfigurationError(f"{device.name!r} is not networked")
        self.sim = sim
        self.device = device
        self.request_timeout = request_timeout
        self.agent = DiscoveryAgent(sim, device)
        self.endpoint = device.reliable(REGISTRY_PORT, self._on_reply)
        self._pending: Dict[int, tuple] = {}  # request_id -> (callback, timer)
        self._event_handlers: List[Callable[[RemoteEvent], None]] = []
        self.mailbox = EventMailbox(self._dispatch_event)
        self._event_rx = device.reliable(EVENT_PORT, self._on_event)
        self.registrations: List[ServiceRegistration] = []
        self.subscriptions: List[Subscription] = []
        self.timeouts = 0
        # Request timeouts are the kernel's cancel-heaviest timer class
        # (nearly every one is cancelled by the reply); renewals are the
        # lease-storm class.  Both run batched, shared across clients.
        self._timeout_q = sim.batch_class(
            "discovery.timeout", _fire_timeout, cancellable=True,
            shared=True)
        self._renew_q = sim.batch_class(
            "discovery.renew", _fire_renewal, cancellable=True, shared=True)

    # ------------------------------------------------------------------
    # Low-level request/reply
    # ------------------------------------------------------------------
    def request(self, locator: RegistryLocator, message: Any,
                size_bytes: int, on_reply: Callable[[Optional[Reply]], None]) -> int:
        """Send one registry request; ``on_reply(None)`` on timeout."""
        request_id = message.request_id
        timer = self._timeout_q.schedule(self.request_timeout,
                                         owner=request_id, payload=self)
        self._pending[request_id] = (on_reply, timer)
        self.endpoint.send(locator.address, message, size_bytes)
        return request_id

    def _timeout(self, request_id: int) -> None:
        entry = self._pending.pop(request_id, None)
        if entry is None:
            return
        self.timeouts += 1
        self.sim.trace("discovery.timeout", self.device.name,
                       f"request {request_id} timed out")
        entry[0](None)

    def _on_reply(self, src: str, reply: Any, _segments: int) -> None:
        if not isinstance(reply, Reply):
            return
        entry = self._pending.pop(reply.request_id, None)
        if entry is None:
            return  # late reply after timeout
        entry[1].cancel()
        entry[0](reply)

    # ------------------------------------------------------------------
    # Registrar discovery
    # ------------------------------------------------------------------
    def discover(self, on_found: Optional[Callable[[RegistryLocator], None]] = None) -> None:
        if on_found is not None:
            self.agent.on_found(on_found)
        self.agent.discover()

    def registries(self) -> List[RegistryLocator]:
        return list(self.agent.known.values())

    def require_registry(self) -> RegistryLocator:
        locators = self.registries()
        if not locators:
            raise DiscoveryError(f"{self.device.name}: no registry known yet")
        return locators[0]

    # ------------------------------------------------------------------
    # Registration with auto-renewal
    # ------------------------------------------------------------------
    def register(self, item: ServiceItem, lease_duration: float,
                 locator: Optional[RegistryLocator] = None,
                 auto_renew: bool = True,
                 on_registered: Optional[Callable[[ServiceRegistration], None]] = None
                 ) -> ServiceRegistration:
        locator = locator or self.require_registry()
        registration = ServiceRegistration(item, locator)
        self.registrations.append(registration)
        message = RegisterRequest(new_request_id(self.sim), item, lease_duration)

        def handle(reply: Optional[Reply]) -> None:
            if reply is None or not reply.ok:
                registration.failures += 1
                # Retry registration after a backoff; the registrar may
                # simply not be reachable yet.
                self.sim.schedule(1.0, _resend)
                return
            registration.lease_id = reply.lease_id
            registration.lease_duration = reply.lease_duration or lease_duration
            registration.active = True
            if auto_renew:
                self._arm_renewal(registration)
            if on_registered is not None:
                on_registered(registration)

        def _resend() -> None:
            if registration.active:
                return
            retry = RegisterRequest(new_request_id(self.sim), item, lease_duration)
            self.request(locator, retry, 64 + item.wire_bytes, handle)

        self.request(locator, message, 64 + item.wire_bytes, handle)
        return registration

    def _arm_renewal(self, registration: ServiceRegistration) -> None:
        delay = registration.lease_duration * RENEW_FRACTION
        registration._renew_event = self._renew_q.schedule(
            delay, payload=(self._renew_registration, registration))

    def _renew_registration(self, registration: ServiceRegistration) -> None:
        if not registration.active or registration.lease_id is None:
            return
        message = RenewRequest(new_request_id(self.sim), registration.lease_id)

        def handle(reply: Optional[Reply]) -> None:
            if reply is None:
                registration.failures += 1
                self._arm_renewal(registration)  # try again next period
                return
            if not reply.ok:
                # Lease already gone: re-register from scratch.
                registration.active = False
                self.sim.issue("discovery", self.device.name,
                               f"lease lost for {registration.item.service_id}; "
                               "re-registering")
                self.register(registration.item,
                              registration.lease_duration,
                              registration.locator)
                return
            registration.renewals += 1
            self._arm_renewal(registration)

        self.request(registration.locator, message, 32, handle)

    def cancel_registration(self, registration: ServiceRegistration,
                            on_done: Optional[Callable[[bool], None]] = None) -> None:
        """The well-behaved path: explicitly relinquish the registration."""
        registration.active = False
        if registration._renew_event is not None:
            registration._renew_event.cancel()
        if registration.lease_id is None:
            if on_done:
                on_done(False)
            return
        message = CancelRequest(new_request_id(self.sim), registration.lease_id)
        self.request(registration.locator, message, 32,
                     lambda reply: on_done(bool(reply and reply.ok))
                     if on_done else None)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def find(self, template: ServiceTemplate,
             on_result: Callable[[List[ServiceItem]], None],
             locator: Optional[RegistryLocator] = None,
             max_matches: int = 16) -> None:
        """Query a registrar; ``on_result([])`` on timeout or no match."""
        locator = locator or self.require_registry()
        message = LookupRequest(new_request_id(self.sim), template, max_matches)

        def handle(reply: Optional[Reply]) -> None:
            on_result(list(reply.items) if reply and reply.ok else [])

        self.request(locator, message, 32 + template.wire_bytes, handle)

    # ------------------------------------------------------------------
    # Remote events
    # ------------------------------------------------------------------
    def subscribe(self, template: ServiceTemplate,
                  on_event: Callable[[RemoteEvent], None],
                  lease_duration: float = 60.0,
                  locator: Optional[RegistryLocator] = None,
                  auto_renew: bool = True) -> Subscription:
        locator = locator or self.require_registry()
        subscription = Subscription(template, locator)
        self.subscriptions.append(subscription)
        self._event_handlers.append(on_event)
        message = NotifyRequest(new_request_id(self.sim), template,
                                self.device.name, lease_duration)

        def handle(reply: Optional[Reply]) -> None:
            if reply is None or not reply.ok:
                return
            subscription.lease_id = reply.lease_id
            subscription.lease_duration = reply.lease_duration or lease_duration
            subscription.active = True
            if auto_renew:
                self._arm_subscription_renewal(subscription)

        self.request(locator, message, 64 + template.wire_bytes, handle)
        return subscription

    def _arm_subscription_renewal(self, subscription: Subscription) -> None:
        delay = subscription.lease_duration * RENEW_FRACTION
        subscription._renew_event = self._renew_q.schedule(
            delay, payload=(self._renew_subscription, subscription))

    def _renew_subscription(self, subscription: Subscription) -> None:
        if not subscription.active or subscription.lease_id is None:
            return
        message = RenewRequest(new_request_id(self.sim), subscription.lease_id)

        def handle(reply: Optional[Reply]) -> None:
            if reply is not None and reply.ok:
                self._arm_subscription_renewal(subscription)
            else:
                subscription.active = False

        self.request(subscription.locator, message, 32, handle)

    def _on_event(self, src: str, event: Any, _segments: int) -> None:
        if isinstance(event, RemoteEvent):
            self.mailbox.deliver(event)

    def _dispatch_event(self, event: RemoteEvent) -> None:
        for handler in list(self._event_handlers):
            handler(event)
