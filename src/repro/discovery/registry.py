"""The lookup service: the Jini registrar of the Aroma scenario.

"The ability to automatically discover the projector service is
implemented using Jini and relies on having a Jini lookup service
present."  :class:`LookupService` is that component: it holds leased
service registrations, answers template lookups, and pushes
:class:`~repro.discovery.events.RemoteEvent` notifications to leased
subscribers.  It speaks a small request/reply protocol over the reliable
transport; co-located callers may use the local methods directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..kernel.errors import LeaseError
from ..kernel.scheduler import Simulator
from .events import ADDED, EXPIRED, REMOVED, RemoteEvent, next_event_sequence
from .leases import Lease, LeaseTable
from .records import ServiceItem, ServiceTemplate

#: Well-known stack port of the lookup service protocol.
REGISTRY_PORT: int = 10
#: Well-known port clients receive remote events on.
EVENT_PORT: int = 11


# ---------------------------------------------------------------------------
# Wire messages
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RegisterRequest:
    request_id: int
    item: ServiceItem
    lease_duration: float


@dataclass(frozen=True)
class RenewRequest:
    request_id: int
    lease_id: int


@dataclass(frozen=True)
class CancelRequest:
    request_id: int
    lease_id: int


@dataclass(frozen=True)
class LookupRequest:
    request_id: int
    template: ServiceTemplate
    max_matches: int = 16


@dataclass(frozen=True)
class NotifyRequest:
    """Subscribe to ADDED/REMOVED/EXPIRED transitions matching a template."""

    request_id: int
    template: ServiceTemplate
    listener: str
    lease_duration: float


@dataclass(frozen=True)
class Reply:
    request_id: int
    ok: bool
    #: lease id for register/renew/notify; items for lookup; error text.
    lease_id: Optional[int] = None
    lease_duration: Optional[float] = None
    items: Tuple[ServiceItem, ...] = ()
    error: str = ""

    @property
    def wire_bytes(self) -> int:
        return 48 + sum(i.wire_bytes for i in self.items)


def new_request_id(sim: Simulator) -> int:
    """Per-simulator request id (was a module-global counter)."""
    return sim.next_seq("discovery.request_seq")


# ---------------------------------------------------------------------------
# The service
# ---------------------------------------------------------------------------

@dataclass
class _Subscription:
    registration_id: int
    template: ServiceTemplate
    listener: str
    lease: Lease


class LookupService:
    """A lookup registrar hosted on one networked device.

    Args:
        sim: simulator.
        device: any object exposing ``name``, ``stack`` and ``reliable()``
            (every :class:`repro.phys.devices.Device` qualifies).
        registry_id: name announced to the network.
        max_lease: clamp for requested lease durations.
    """

    def __init__(self, sim: Simulator, device, registry_id: str = "registry",
                 max_lease: float = 300.0, sweep_interval: float = 1.0) -> None:
        self.sim = sim
        self.device = device
        self.registry_id = registry_id
        self.address = device.stack.address
        self._items: Dict[str, ServiceItem] = {}
        self._lease_to_service: Dict[int, str] = {}
        self._service_to_lease: Dict[str, int] = {}
        self.leases = LeaseTable(sim, f"{registry_id}.registrations",
                                 max_duration=max_lease,
                                 on_expired=self._registration_expired,
                                 sweep_interval=sweep_interval)
        self.subscription_leases = LeaseTable(
            sim, f"{registry_id}.subscriptions", max_duration=max_lease,
            on_expired=self._subscription_expired,
            sweep_interval=sweep_interval)
        self._subscriptions: Dict[int, _Subscription] = {}
        self._sub_lease_to_id: Dict[int, int] = {}
        self.endpoint = device.reliable(REGISTRY_PORT, self._on_request)
        self._event_tx = device.reliable(EVENT_PORT)
        self.requests_served = 0
        self.events_sent = 0
        sim.metrics.register_probe(f"registry.{registry_id}", lambda: {
            "registrations": len(self._items),
            "subscriptions": len(self._subscriptions),
            "requests_served": self.requests_served,
            "events_sent": self.events_sent,
        })

    # ------------------------------------------------------------------
    # Local (co-located) API
    # ------------------------------------------------------------------
    def register(self, item: ServiceItem, lease_duration: float) -> Lease:
        """Register or re-register a service item."""
        previous = self._service_to_lease.pop(item.service_id, None)
        if previous is not None:
            self._lease_to_service.pop(previous, None)
            try:
                self.leases.cancel(previous)
            except LeaseError:
                pass
        lease = self.leases.grant(item.proxy.provider, item.service_id,
                                  lease_duration)
        is_new = item.service_id not in self._items
        self._items[item.service_id] = item
        self._lease_to_service[lease.lease_id] = item.service_id
        self._service_to_lease[item.service_id] = lease.lease_id
        if is_new:
            self._notify(ADDED, item)
        return lease

    def renew(self, lease_id: int, duration: Optional[float] = None) -> Lease:
        """Renew a registration *or* subscription lease (ids are global)."""
        if self.leases.get(lease_id) is not None:
            return self.leases.renew(lease_id, duration)
        return self.subscription_leases.renew(lease_id, duration)

    def cancel(self, lease_id: int) -> None:
        if self.leases.get(lease_id) is None and \
                self.subscription_leases.get(lease_id) is not None:
            self.subscription_leases.cancel(lease_id)
            registration_id = self._sub_lease_to_id.pop(lease_id, None)
            if registration_id is not None:
                self._subscriptions.pop(registration_id, None)
            return
        lease = self.leases.cancel(lease_id)
        service_id = self._lease_to_service.pop(lease_id, None)
        if service_id is not None:
            self._service_to_lease.pop(service_id, None)
            item = self._items.pop(service_id, None)
            if item is not None:
                self._notify(REMOVED, item)

    def lookup(self, template: ServiceTemplate,
               max_matches: int = 16) -> List[ServiceItem]:
        """All registered items matching ``template`` (bounded)."""
        out = []
        for item in self._items.values():
            if template.matches(item):
                out.append(item)
                if len(out) >= max_matches:
                    break
        return out

    def notify(self, template: ServiceTemplate, listener: str,
               lease_duration: float) -> Tuple[int, Lease]:
        """Subscribe ``listener`` to transitions matching ``template``."""
        registration_id = self.sim.next_seq("discovery.notify_seq")
        lease = self.subscription_leases.grant(
            listener, f"notify-{registration_id}", lease_duration)
        sub = _Subscription(registration_id, template, listener, lease)
        self._subscriptions[registration_id] = sub
        self._sub_lease_to_id[lease.lease_id] = registration_id
        return registration_id, lease

    def items(self) -> List[ServiceItem]:
        return list(self._items.values())

    # ------------------------------------------------------------------
    # Expiry and notification plumbing
    # ------------------------------------------------------------------
    def _registration_expired(self, lease: Lease) -> None:
        service_id = self._lease_to_service.pop(lease.lease_id, None)
        if service_id is None:
            return
        self._service_to_lease.pop(service_id, None)
        item = self._items.pop(service_id, None)
        if item is not None:
            self.sim.issue("discovery", self.registry_id,
                           f"registration of {service_id} expired "
                           "(provider stopped renewing)",
                           service_id=service_id)
            self._notify(EXPIRED, item)

    def _subscription_expired(self, lease: Lease) -> None:
        registration_id = self._sub_lease_to_id.pop(lease.lease_id, None)
        if registration_id is not None:
            self._subscriptions.pop(registration_id, None)

    def _notify(self, kind: str, item: ServiceItem) -> None:
        for sub in list(self._subscriptions.values()):
            if sub.template.matches(item):
                event = RemoteEvent(next_event_sequence(self.sim), kind, item,
                                    sub.registration_id)
                self.events_sent += 1
                self._event_tx.send(sub.listener, event, event.wire_bytes)

    # ------------------------------------------------------------------
    # Network protocol
    # ------------------------------------------------------------------
    def _on_request(self, src: str, request: Any, _segments: int) -> None:
        self.requests_served += 1
        reply = self._dispatch(src, request)
        if reply is not None:
            self.endpoint.send(src, reply, reply.wire_bytes)

    def _dispatch(self, src: str, request: Any) -> Optional[Reply]:
        if isinstance(request, RegisterRequest):
            lease = self.register(request.item, request.lease_duration)
            return Reply(request.request_id, True, lease_id=lease.lease_id,
                         lease_duration=lease.duration)
        if isinstance(request, RenewRequest):
            try:
                lease = self.renew(request.lease_id)
            except LeaseError as exc:
                return Reply(request.request_id, False, error=str(exc))
            return Reply(request.request_id, True, lease_id=lease.lease_id,
                         lease_duration=lease.duration)
        if isinstance(request, CancelRequest):
            try:
                self.cancel(request.lease_id)
            except LeaseError as exc:
                return Reply(request.request_id, False, error=str(exc))
            return Reply(request.request_id, True)
        if isinstance(request, LookupRequest):
            matches = self.lookup(request.template, request.max_matches)
            return Reply(request.request_id, True, items=tuple(matches))
        if isinstance(request, NotifyRequest):
            registration_id, lease = self.notify(
                request.template, request.listener, request.lease_duration)
            return Reply(request.request_id, True, lease_id=lease.lease_id,
                         lease_duration=lease.duration)
        self.sim.trace("registry.badreq", self.registry_id,
                       f"unknown request {request!r} from {src}")
        return None

    def stop(self) -> None:
        self.leases.stop()
        self.subscription_leases.stop()
        self.endpoint.close()
        self._event_tx.close()
