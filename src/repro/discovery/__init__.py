"""Jini-style service discovery middleware.

"Service discovery, self-configuration, and dynamic resource sharing" is
the second of the Aroma project's research areas; this package is its
implementation: multicast registrar discovery, leased registrations,
template lookup, mobile-code proxies, and remote events.
"""

from .client import (
    RENEW_FRACTION,
    ServiceDiscoveryClient,
    ServiceRegistration,
    Subscription,
)
from .events import ADDED, EXPIRED, REMOVED, EventMailbox, RemoteEvent
from .leases import Lease, LeaseTable
from .protocol import (
    ANNOUNCE_GROUP,
    AnnouncingRegistry,
    DiscoveryAgent,
    DiscoveryRequest,
    REQUEST_GROUP,
    RegistryLocator,
)
from .records import (
    MATCH_ALL,
    ServiceItem,
    ServiceProxy,
    ServiceTemplate,
    new_service_id,
)
from .registry import (
    EVENT_PORT,
    REGISTRY_PORT,
    CancelRequest,
    LookupRequest,
    LookupService,
    NotifyRequest,
    RegisterRequest,
    RenewRequest,
    Reply,
    new_request_id,
)

__all__ = [
    "ADDED",
    "ANNOUNCE_GROUP",
    "AnnouncingRegistry",
    "CancelRequest",
    "DiscoveryAgent",
    "DiscoveryRequest",
    "EVENT_PORT",
    "EXPIRED",
    "EventMailbox",
    "Lease",
    "LeaseTable",
    "LookupRequest",
    "LookupService",
    "MATCH_ALL",
    "NotifyRequest",
    "REGISTRY_PORT",
    "REMOVED",
    "RENEW_FRACTION",
    "REQUEST_GROUP",
    "RegisterRequest",
    "RegistryLocator",
    "RemoteEvent",
    "RenewRequest",
    "Reply",
    "ServiceDiscoveryClient",
    "ServiceItem",
    "ServiceProxy",
    "ServiceRegistration",
    "ServiceTemplate",
    "Subscription",
    "new_request_id",
    "new_service_id",
]
