"""Service records: items, proxies, attribute templates.

The Jini analog: a provider registers a :class:`ServiceItem` — identity,
typed attributes, and a :class:`ServiceProxy` (the *mobile code* a client
downloads to talk to the service; we model its size so proxy download
costs airtime, and its interface so clients can bind it).  Consumers match
items with :class:`ServiceTemplate`, Jini's ``ServiceTemplate`` semantics:
every given field must match, absent fields are wildcards.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

from ..kernel.errors import ConfigurationError

_service_seq = itertools.count(1)


def new_service_id(prefix: str = "svc") -> str:
    """Mint a unique service id (deterministic across identical runs)."""
    return f"{prefix}-{next(_service_seq):04d}"


@dataclass(frozen=True)
class ServiceProxy:
    """The downloadable client-side object for one service.

    Attributes:
        provider: network address the proxy talks back to.
        port: stack port of the service endpoint.
        protocol: wire protocol the proxy implements (e.g. ``"vnc"``,
            ``"projector-control"``).
        code_bytes: size of the proxy code; transferred on first lookup —
            the cost of mobile code on a slow radio.
    """

    provider: str
    port: int
    protocol: str
    code_bytes: int = 4096

    def __post_init__(self) -> None:
        if self.port < 0 or self.code_bytes < 0:
            raise ConfigurationError("bad proxy port/code size")


@dataclass(frozen=True)
class ServiceItem:
    """One registered service."""

    service_id: str
    service_type: str
    proxy: ServiceProxy
    attributes: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.service_id or not self.service_type:
            raise ConfigurationError("service id and type are required")
        # Freeze the attribute mapping so items are safely shareable.
        object.__setattr__(self, "attributes", dict(self.attributes))

    @property
    def wire_bytes(self) -> int:
        """Approximate marshalled size: fixed header + attributes + proxy."""
        attr_bytes = sum(16 + len(str(k)) + len(str(v))
                         for k, v in self.attributes.items())
        return 64 + attr_bytes + self.proxy.code_bytes


@dataclass(frozen=True)
class ServiceTemplate:
    """A lookup query: all present fields must match, absent = wildcard."""

    service_type: Optional[str] = None
    service_id: Optional[str] = None
    attributes: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "attributes", dict(self.attributes))

    def matches(self, item: ServiceItem) -> bool:
        if self.service_id is not None and item.service_id != self.service_id:
            return False
        if self.service_type is not None and item.service_type != self.service_type:
            return False
        for key, wanted in self.attributes.items():
            if item.attributes.get(key) != wanted:
                return False
        return True

    @property
    def wire_bytes(self) -> int:
        return 32 + sum(16 + len(str(k)) + len(str(v))
                        for k, v in self.attributes.items())


#: Template matching everything (Jini's ``new ServiceTemplate(null, null, null)``).
MATCH_ALL = ServiceTemplate()
