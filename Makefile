# Convenience entry points for the reproduction.
#
#   make test   - tier-1 test suite
#   make bench  - E10 kernel microbenchmarks (pytest-benchmark statistics),
#                 then BENCH_*.json emission (kernel/sweeps/trace/scale —
#                 scale runs 200/500/1000-station rooms culled vs
#                 exhaustive) + the >20% regression gate against
#                 benchmarks/baseline_kernel.json and baseline_scale.json
#   make bench-baseline - re-measure and overwrite the committed baselines

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench bench-baseline

test:
	$(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) -m pytest benchmarks/test_bench_kernel.py -q \
		--benchmark-json=benchmarks/.bench_raw.json
	$(PYTHON) -m repro.cli bench --raw benchmarks/.bench_raw.json

bench-baseline:
	$(PYTHON) -m pytest benchmarks/test_bench_kernel.py -q \
		--benchmark-json=benchmarks/.bench_raw.json
	$(PYTHON) -m repro.cli bench --raw benchmarks/.bench_raw.json \
		--update-baseline
