# Convenience entry points for the reproduction.
#
#   make test   - tier-1 test suite (includes the static-analysis
#                 meta-check in tests/test_meta_checks.py)
#   make lint   - ruff (when installed) + the repro.checks static pass:
#                 determinism rules (LPC1xx), layer boundaries (LPC2xx)
#                 and whole-program fork-safety flow rules (LPC3xx, over
#                 the module call graph) against checks_baseline.json
#   make bench  - E10 kernel microbenchmarks (pytest-benchmark statistics),
#                 then BENCH_*.json emission (kernel/sweeps/trace/scale/
#                 cache/storm/telemetry/shard — scale runs 200/500/1000-
#                 station rooms culled vs exhaustive; cache runs the E2
#                 sweep uncached vs cold vs warm through the content-
#                 addressed run cache; storm runs the batched-vs-legacy
#                 homogeneous-timer storm; telemetry exports 1M synthetic
#                 events as JSONL vs columnar and probes streaming-
#                 aggregation memory; shard runs the 1.2k-station multi-
#                 cell grid sharded vs the single-process oracle; checks
#                 runs the static pass cold vs warm-incremental) + the
#                 regression gates: >20% throughput vs
#                 baseline_kernel.json / baseline_scale.json, the cache
#                 gate (rows identical, warm speedup >= 5x, cold overhead
#                 <= 5%) vs baseline_cache.json, the sweep gate (rows
#                 identical; 2x parallel speedup on >=4-cpu hosts), the
#                 storm gate (outcomes identical, >=10x batched speedup)
#                 vs baseline_storm.json, the telemetry gate
#                 (streaming summaries byte-identical, columnar >=3x
#                 smaller and >=2x faster than JSONL, streaming memory
#                 bounded, disabled-path overhead <= 5%) vs
#                 baseline_telemetry.json, the shard gate (sharded
#                 outcomes and merged telemetry byte-identical to the
#                 oracle, coupled multiprocess == inline; 2x 4-shard
#                 speedup on >=4-cpu hosts) vs baseline_shard.json, and
#                 the checks gate (warm findings byte-identical, zero
#                 warm re-parses, >=3x warm speedup) vs
#                 baseline_checks.json
#   make bench-kernel - kernel microbenchmark + its gate only: the
#                 pytest-benchmark timer chains, BENCH_kernel.json with
#                 the active dispatch backend (and an explicit skip
#                 marker when the compiled backend is unavailable), and
#                 the calibration-relative >=2x dispatch-core gate vs
#                 baseline_kernel.json.  Seconds, not minutes — the leg
#                 to run while iterating on the run loop.
#   make bench-baseline - re-measure and overwrite the committed baselines

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test lint bench bench-kernel bench-baseline

test:
	$(PYTHON) -m pytest -x -q

lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks; \
	else \
		echo "ruff not installed; skipping (pip install -e .[lint])"; \
	fi
	$(PYTHON) -m repro.cli check

bench:
	$(PYTHON) -m pytest benchmarks/test_bench_kernel.py -q \
		--benchmark-json=benchmarks/.bench_raw.json
	$(PYTHON) -m repro.cli bench --raw benchmarks/.bench_raw.json

bench-kernel:
	$(PYTHON) -m pytest benchmarks/test_bench_kernel.py -q \
		--benchmark-json=benchmarks/.bench_raw.json
	$(PYTHON) -m repro.cli bench --raw benchmarks/.bench_raw.json \
		--kernel-only

bench-baseline:
	$(PYTHON) -m pytest benchmarks/test_bench_kernel.py -q \
		--benchmark-json=benchmarks/.bench_raw.json
	$(PYTHON) -m repro.cli bench --raw benchmarks/.bench_raw.json \
		--update-baseline
