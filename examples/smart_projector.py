"""The paper's challenge application, end to end.

A presenter walks into the conference room, her laptop discovers the Jini
lookup service over the 2.4 GHz LAN, finds the Smart Projector's two
services, acquires both sessions, starts the VNC server, and presents a
slide deck with an embedded animation — then *forgets to release the
projector*, and the lease mechanism reclaims it for the next presenter.

The run is instrumented with the LPC model: the issues observed along the
way are classified into layers and compared with the paper's own
inventory.

Run:  python examples/smart_projector.py
"""

from __future__ import annotations

from repro import LPCInstrument, smart_projector_model
from repro.core.analysis import compare_with_paper
from repro.experiments.workloads import presentation_workflow, projector_room
from repro.kernel.errors import SessionError
from repro.services.content import MixedContent


def main() -> None:
    room = projector_room(seed=2026, session_lease_s=25.0)
    sim = room.sim

    model = smart_projector_model()
    LPCInstrument(sim, model)

    # The presentation workflow (discover -> acquire x2 -> VNC -> start).
    outcome = {}
    presentation_workflow(room, on_done=lambda ok: outcome.update(ok=ok))

    # Slides with a 30%-duty embedded animation.
    content = MixedContent(sim, room.client.fb, dwell_s=12.0,
                           animation_duty=0.3, fps=10.0)
    content.start()

    # A second presenter tries to grab the projector mid-talk: instead of
    # polling (or phoning an administrator), they join the session wait
    # queue and are handed the projector the moment it frees up.
    def second_presenter() -> None:
        try:
            room.smart.projection_sessions.acquire("impatient-colleague")
        except SessionError as exc:
            print(f"[t={sim.now:6.1f}s] colleague rebuffed: {exc}")
            room.smart.projection_sessions.acquire_or_wait(
                "impatient-colleague",
                lambda session: print(f"[t={sim.now:6.1f}s] colleague "
                                      f"granted the session from the wait "
                                      f"queue"))

    sim.schedule(30.0, second_presenter)

    # ...and at t=60 the presenter walks off without releasing anything:
    # renewals stop, the VNC server dies with the laptop lid.
    def walk_away() -> None:
        print(f"[t={sim.now:6.1f}s] presenter leaves without releasing")
        room.client.stop_vnc_server()

    sim.schedule(60.0, walk_away)
    renewals = sim.every(10.0, room.client.renew_sessions, start=15.0)
    sim.schedule(60.0, renewals.cancel)

    sim.run(until=120.0)

    print(f"\npresentation started ok: {outcome.get('ok')}")
    print(f"frames projected: {room.projector.frames_displayed}")
    print(f"projector free again: {room.smart.projection_sessions.available} "
          f"(lease reclaimed the forgotten session)")

    print("\n--- LPC analysis of the observed run ---")
    print(model.report())

    coverage = compare_with_paper(model.concerns())
    print("\n--- coverage of the paper's issue inventory ---")
    print(coverage.summary())


if __name__ == "__main__":
    main()
