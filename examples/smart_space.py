"""A discovery-rich smart space: many appliances, one lookup service.

The paper's vision is a room full of $10 information appliances that
"automatically discover and use remote services".  This example populates
a smart room with a handful of appliances (printer, display wall, coffee
machine, door sign), lets a visitor's PDA discover them as it walks in on
a random-waypoint path, and shows the middleware healing itself when an
appliance crashes: its registration lease expires, subscribers get the
EXPIRED event, and the desktop-icon state mirrors reality.

Run:  python examples/smart_space.py
"""

from __future__ import annotations

from repro.discovery.client import ServiceDiscoveryClient
from repro.discovery.protocol import AnnouncingRegistry, RegistryLocator
from repro.discovery.records import (
    MATCH_ALL,
    ServiceItem,
    ServiceProxy,
    new_service_id,
)
from repro.discovery.registry import LookupService, REGISTRY_PORT
from repro.env.mobility import RandomWaypoint
from repro.env.world import World
from repro.kernel.scheduler import Simulator
from repro.phys.devices import Device, PDA
from repro.phys.mac import WirelessMedium

APPLIANCES = [
    ("printer", (5.0, 5.0)),
    ("display-wall", (30.0, 5.0)),
    ("coffee-machine", (5.0, 20.0)),
    ("door-sign", (30.0, 20.0)),
]


def main() -> None:
    sim = Simulator(seed=7)
    world = World(40.0, 25.0)
    medium = WirelessMedium(sim, world)

    # The room's infrastructure: hub with lookup service.
    hub = Device(sim, world, "hub", (18.0, 12.0), medium=medium)
    registry = LookupService(sim, hub, "room-registry")
    AnnouncingRegistry(sim, hub,
                       RegistryLocator("room-registry", "hub", REGISTRY_PORT),
                       announce_interval=5.0)

    # Appliances register themselves under 20 s leases.
    providers = {}
    for name, position in APPLIANCES:
        appliance = Device(sim, world, name, position, medium=medium)
        discovery = ServiceDiscoveryClient(sim, appliance)
        item = ServiceItem(new_service_id(), name,
                           ServiceProxy(name, 30, name), {"room": "lab-221"})
        discovery.discover(
            lambda loc, d=discovery, it=item: d.register(it, 20.0))
        providers[name] = discovery

    # A visitor's PDA roams in and watches the service population.
    pda = PDA(sim, world, "visitor-pda", (1.0, 1.0), medium)
    RandomWaypoint(sim, world, "visitor-pda", speed_min=0.8,
                   speed_max=1.5, pause=2.0).start()
    pda_discovery = ServiceDiscoveryClient(sim, pda)
    icon_state = {}

    def on_event(event) -> None:
        icon_state[event.item.service_type] = event.kind
        print(f"[t={sim.now:6.1f}s] icon update: "
              f"{event.item.service_type:14s} -> {event.kind}")

    pda_discovery.discover(
        lambda loc: pda_discovery.subscribe(MATCH_ALL, on_event,
                                            lease_duration=120.0))

    def browse() -> None:
        pda_discovery.find(
            MATCH_ALL,
            lambda items: print(f"[t={sim.now:6.1f}s] PDA sees "
                                f"{sorted(i.service_type for i in items)}"))

    sim.schedule(3.0, browse)

    # At t=20 the coffee machine crashes: renewals stop.
    def crash_coffee() -> None:
        print(f"[t={sim.now:6.1f}s] coffee machine crashes (stops renewing)")
        for registration in providers["coffee-machine"].registrations:
            registration.active = False
            if registration._renew_event is not None:
                registration._renew_event.cancel()

    sim.schedule(20.0, crash_coffee)
    sim.schedule(50.0, browse)

    sim.run(until=60.0)

    print(f"\nregistered services at t=60: "
          f"{sorted(i.service_type for i in registry.items())}")
    print(f"PDA icon states: {icon_state}")
    assert icon_state.get("coffee-machine") == "expired"


if __name__ == "__main__":
    main()
