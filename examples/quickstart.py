"""Quickstart: the LPC model in five minutes.

Builds the paper's conceptual model, renders its figures, runs the four
cross-column constraint checks on concrete artifacts, classifies a few
design concerns, and prints the layered report — all without touching the
network simulator.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import Simulator, figure1, smart_projector_model
from repro.core import (
    check_intentional_harmony,
    check_physical_compatibility,
    check_radio_environment,
    check_resource_match,
)
from repro.env.radio import PropagationModel
from repro.phys.devices import laptop_form
from repro.phys.human import PhysicalProfile
from repro.resource.faculties import casual_user, researcher
from repro.resource.platform import adapter_platform, soc_platform
from repro.user.goals import (
    presentation_goal,
    research_goal,
    research_prototype_purpose,
)


def main() -> None:
    # 1. The model itself, as the paper draws it. ------------------------
    print(figure1())
    print()

    # 2. An LPC model of the Smart Projector with the paper's entities. --
    model = smart_projector_model()

    # 3. Constraint checks: each layer's defining relation, executed. ----
    model.record_check(check_radio_environment(
        PropagationModel(shadowing_sigma_db=0.0), distance_m=25.0,
        required_rate_bps=2e6, subject="laptop->adapter link"))
    model.record_check(check_physical_compatibility(
        laptop_form(), PhysicalProfile("presenter")))
    model.record_check(check_resource_match(adapter_platform(), researcher()))
    model.record_check(check_resource_match(adapter_platform(), casual_user()))
    model.record_check(check_resource_match(soc_platform(), casual_user()))
    model.record_check(check_intentional_harmony(
        research_prototype_purpose(), research_goal(), researcher()))
    model.record_check(check_intentional_harmony(
        research_prototype_purpose(), presentation_goal(), casual_user()))

    # 4. Classify a few concerns straight from the paper's prose. --------
    model.add_concern(
        "users who forget to relinquish control of the projector",
        topic="session", entity="presenter")
    model.add_concern(
        "many wireless devices operate in the 2.4 GHz radio band",
        topic="interference")
    model.add_concern(
        "users assumed capable of fixing the wireless network and adapter",
        topic="admin", entity="presenter")

    # 5. The layered report: the paper's analysis style, regenerated. ----
    print(model.report())

    health = model.layer_health()
    weakest = min(health, key=health.get)
    print(f"\nweakest layer: {weakest.title} (health {health[weakest]:.2f})")
    print(f"violations found: {len(model.violations())}")


if __name__ == "__main__":
    main()
