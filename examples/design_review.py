"""A design review, run the way the paper intends the model to be used.

Take a live deployment, build its LPC model in one call, generate the
layered review checklist, walk the checklist recording findings from the
constraint checks, and print the review pack — first for the paper's
intended user (a researcher), then for the casual presenter the paper
admits the prototype does not serve.

Run:  python examples/design_review.py
"""

from __future__ import annotations

from repro.core import Layer, build_checklist, model_from_room
from repro.experiments.workloads import projector_room
from repro.resource.faculties import casual_user, researcher


def review_for(user_label, faculties) -> None:
    print("=" * 72)
    print(f"REVIEW: Smart Projector deployment, presenter = {user_label}")
    print("=" * 72)

    room = projector_room(seed=500, register=False)
    model = model_from_room(room, presenter_faculties=faculties)

    checklist = build_checklist(model)

    # Walk the checklist: constraint results become findings on the
    # matching layer's items.
    for layer in Layer:
        layer_checks = model.checks(layer)
        for item in checklist.section(layer):
            if not layer_checks:
                continue
            worst = min(layer_checks, key=lambda c: c.score)
            if worst.satisfied:
                item.resolve()
            else:
                item.resolve("; ".join(worst.details))

    print(checklist.render())
    print()
    print(f"constraint violations: {len(model.violations())}")
    health = model.layer_health()
    for layer in sorted(Layer, reverse=True):
        bar = "#" * int(round(health[layer] * 20))
        print(f"  {layer.title:12s} {bar:20s} {health[layer]:.2f}")
    print()


def main() -> None:
    review_for("lab researcher (intended user)", researcher("reviewer-r"))
    review_for("casual presenter (the world outside)",
               casual_user("reviewer-c"))
    print("The same deployment, two different humans: the research "
          "prototype reviews\nclean for its intended users and lights up "
          "every upper layer for casual ones\n— the paper's intentional-"
          "layer lesson as a review artifact.")


if __name__ == "__main__":
    main()
