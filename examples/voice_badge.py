"""A voice-controlled projector badge vs the acoustic environment.

The paper's environment analysis: background noise that is acceptable
today "may become objectionable if voice recognition is used", and voice
devices "may be socially inappropriate in a cramped office".  This example
walks a future voice-badge version of the Smart Projector through three
venues — a quiet office, a conference room with chatter, and a machine
room — and reports recognition quality and social acceptability per venue,
plus how users with different voices fare.

Run:  python examples/voice_badge.py
"""

from __future__ import annotations

from repro.core import Layer, check_acoustic_environment
from repro.env.noise import TYPICAL_LEVELS_DB, AcousticField, NoiseSource
from repro.env.world import World
from repro.kernel.scheduler import Simulator
from repro.phys.human import PhysicalUser, SpeechRecognizer
from repro.user.physiology import sample_bodies

COMMANDS = ["projector", "on", "next", "slide", "brighter", "stop"]

VENUES = [
    ("quiet office", 38.0, []),
    ("conference room", 45.0, [("chatter", TYPICAL_LEVELS_DB["conversation"],
                                (11.0, 10.0))]),
    ("machine room", 52.0, [("compressor", TYPICAL_LEVELS_DB["machine_room"],
                             (12.0, 10.0))]),
]


def main() -> None:
    sim = Simulator(seed=11)
    print(f"{'venue':18s} {'ambient':>8s} {'WER':>6s} {'commands ok':>12s} "
          f"{'socially ok':>12s} {'LPC verdict'}")
    for venue, floor_db, sources in VENUES:
        world = World(20.0, 20.0)
        field = AcousticField(world, floor_db=floor_db)
        world.place("badge", (10.0, 10.0))
        for name, level, position in sources:
            field.add_source(NoiseSource(name, level, social=True), position)

        recognizer = SpeechRecognizer(sim, name=venue)
        bodies = sample_bodies(sim.rng(f"bodies.{venue}"), 8)
        commands_ok = 0
        commands_total = 0
        for body in bodies:
            user = PhysicalUser(sim, body)
            snr = field.speech_snr_db(body.speech_level_db, "badge")
            heard = recognizer.recognize(user.speak(COMMANDS * 5), snr)
            for i in range(0, len(heard) - 1, 2):
                commands_total += 1
                if heard[i] is not None and heard[i + 1] is not None:
                    commands_ok += 1

        social = field.socially_appropriate("badge",
                                            bodies[0].speech_level_db)
        verdict = check_acoustic_environment(field, "badge", bodies[0],
                                             needs_voice=True)
        assert verdict.layer == Layer.ENVIRONMENT
        print(f"{venue:18s} {field.level_at('badge'):7.1f}dB "
              f"{recognizer.measured_wer:6.1%} "
              f"{commands_ok / max(1, commands_total):12.1%} "
              f"{str(social):>12s} "
              f"{'ok' if verdict.satisfied else 'VIOLATION'}")

    print("\nThe double bind the paper predicts: where recognition works "
          "the room is quiet\nenough that speaking commands is socially "
          "inappropriate; where speaking is\nacceptable, recognition "
          "fails.")


if __name__ == "__main__":
    main()
